(* The arc CLI: parse SQL or ARC comprehension text, validate it, render any
   modality, evaluate against inline data, compare candidate queries by
   intent, and browse the paper catalog.

   Examples:
     arc render -i sql -o alt "select R.A from R, S where R.B = S.B"
     arc render -o higraph "{Q(A) | exists r in R[Q.A = r.A]}"
     arc eval -t "R(A,B)=1,10;2,20" "{Q(A) | exists r in R[Q.A = r.A and r.B > 15]}"
     arc validate -s "R:A,B" "{Q(A) | exists r in R[Q.A = r.zz]}"
     arc compare -s "R:A,B" "select R.A from R" "select r.A from R r"
     arc catalog E19-count-bug *)

open Cmdliner
module A = Arc_core.Ast
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

(* ------------------------------------------------------------------ *)
(* Shared parsing helpers                                              *)
(* ------------------------------------------------------------------ *)

let die fmt = Printf.ksprintf (fun s -> raise (Failure s)) fmt

(* "R:A,B" schema syntax *)
let parse_schema s =
  match String.split_on_char ':' s with
  | [ name; attrs ] -> (String.trim name, String.split_on_char ',' (String.trim attrs))
  | _ -> die "bad schema %S (expected Name:attr1,attr2)" s

(* literal syntax shared by inline tables and batch CSVs *)
let parse_value v =
  let v = String.trim v in
  if v = "null" then V.Null
  else if String.length v >= 2 && v.[0] = '\'' then
    V.Str (String.sub v 1 (String.length v - 2))
  else
    match int_of_string_opt v with
    | Some n -> V.Int n
    | None -> (
        match float_of_string_opt v with
        | Some f -> V.Float f
        | None -> V.Str v)

(* "R(A,B)=1,10;2,20" inline table syntax *)
let parse_table s =
  match String.index_opt s '=' with
  | None -> die "bad table %S (expected R(A,B)=v,v;v,v)" s
  | Some eq ->
      let header = String.sub s 0 eq in
      let data = String.sub s (eq + 1) (String.length s - eq - 1) in
      let name, attrs =
        match String.index_opt header '(' with
        | Some l when String.length header > 0 && header.[String.length header - 1] = ')' ->
            ( String.trim (String.sub header 0 l),
              String.split_on_char ','
                (String.sub header (l + 1) (String.length header - l - 2))
              |> List.map String.trim )
        | _ -> die "bad table header %S" header
      in
      let rows =
        if String.trim data = "" then []
        else
          String.split_on_char ';' data
          |> List.map (fun row ->
                 String.split_on_char ',' row |> List.map parse_value)
      in
      (name, Relation.of_rows attrs rows)

let parse_input lang text schemas =
  match lang with
  | `Arc -> Arc_syntax.Parser.program_of_string text
  | `Sql ->
      Arc_sql.To_arc.statement ~schemas
        (Arc_sql.Parse.statement_of_string text)
  | `Trc ->
      { A.defs = []; main = A.Coll (Arc_trc.Trc.to_arc text) }
  | `Datalog ->
      let prog = Arc_datalog.Parse.program_of_string text in
      let query =
        match Arc_datalog.Ast.head_preds prog with
        | q :: _ -> q
        | [] -> die "empty datalog program"
      in
      Arc_datalog.Embed.program ~schemas prog ~query

(* ------------------------------------------------------------------ *)
(* Common args                                                         *)
(* ------------------------------------------------------------------ *)

let query_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"QUERY" ~doc:"Query text (ARC comprehension, SQL, or Datalog).")

let input_lang =
  Arg.(
    value
    & opt
        (enum
           [ ("arc", `Arc); ("sql", `Sql); ("datalog", `Datalog); ("trc", `Trc) ])
        `Arc
    & info [ "i"; "input" ] ~docv:"LANG"
        ~doc:"Input language: arc, sql, datalog, or trc (textbook notation).")

let schemas_arg =
  Arg.(
    value & opt_all string []
    & info [ "s"; "schema" ] ~docv:"SCHEMA"
        ~doc:"Base relation schema, e.g. R:A,B. Repeatable.")

let tables_arg =
  Arg.(
    value & opt_all string []
    & info [ "t"; "table" ] ~docv:"TABLE"
        ~doc:"Inline table, e.g. 'R(A,B)=1,10;2,20'. Repeatable.")

let conv_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("sql", Arc_value.Conventions.sql);
             ("sql-set", Arc_value.Conventions.sql_set);
             ("souffle", Arc_value.Conventions.souffle);
             ("classical", Arc_value.Conventions.classical);
           ])
        Arc_value.Conventions.sql_set
    & info [ "c"; "convention" ] ~docv:"CONV"
        ~doc:"Conventions: sql, sql-set, souffle, or classical.")

let wrap f = try `Ok (f ()) with
  | Failure m
  | Arc_syntax.Parser.Parse_error m
  | Arc_sql.Parse.Parse_error m
  | Arc_sql.To_arc.Unsupported m
  | Arc_sql.Of_arc.Unsupported m
  | Arc_datalog.Parse.Parse_error m
  | Arc_datalog.Embed.Embed_error m
  | Arc_trc.Trc.Parse_error m
  | Arc_trc.Trc.Normalize_error m
  | Arc_sql.Eval_sql.Sql_error m ->
      `Error (false, m)
  | Arc_engine.Eval.Eval_error e -> `Error (false, Arc_guard.Error.to_string e)
  | Arc_ivm.Ivm.Ivm_error m -> `Error (false, m)
  | Arc_guard.Error.Guard_error e -> `Error (false, Arc_guard.Error.to_string e)
  | Arc_engine.Externals.External_error { relation; cause } ->
      `Error (false, Printf.sprintf "external relation %S failed: %s" relation cause)
  | Invalid_argument m -> `Error (false, m)
  | Sys_error m -> `Error (false, m)

(* ------------------------------------------------------------------ *)
(* render                                                              *)
(* ------------------------------------------------------------------ *)

let output_fmt =
  Arg.(
    value
    & opt
        (enum
           [
             ("arc", `Arc); ("pretty", `Pretty); ("alt", `Alt);
             ("json", `Json); ("sexp", `Sexp); ("higraph", `Higraph);
             ("dot", `Dot); ("sql", `Sql); ("pattern", `Pattern);
             ("skeleton", `Skeleton);
           ])
        `Pretty
    & info [ "o"; "output" ] ~docv:"MODALITY"
        ~doc:
          "Output modality: arc, pretty, alt, json, sexp, higraph, dot, sql, \
           pattern, or skeleton.")

let render lang fmt schemas text =
  wrap (fun () ->
      let schemas = List.map parse_schema schemas in
      let prog = parse_input lang text schemas in
      let out =
        match fmt with
        | `Arc -> Arc_syntax.Printer.program prog
        | `Pretty ->
            String.concat "\n"
              (List.map
                 (fun (d : A.definition) ->
                   "def " ^ d.A.def_name ^ " := "
                   ^ Arc_syntax.Printer.pretty_query (A.Coll d.A.def_body))
                 prog.A.defs
              @ [ Arc_syntax.Printer.pretty_query prog.A.main ])
        | `Alt -> Arc_alt.Alt.render (Arc_alt.Alt.link (Arc_alt.Alt.of_program prog))
        | `Json -> Arc_alt.Alt.to_json (Arc_alt.Alt.link (Arc_alt.Alt.of_program prog))
        | `Sexp -> Arc_alt.Alt.to_sexp (Arc_alt.Alt.link (Arc_alt.Alt.of_program prog))
        | `Higraph ->
            Arc_higraph.Higraph.render
              (Arc_higraph.Higraph.of_query ~defs:prog.A.defs prog.A.main)
        | `Dot ->
            Arc_higraph.Higraph.to_dot
              (Arc_higraph.Higraph.of_query ~defs:prog.A.defs prog.A.main)
        | `Sql -> Arc_sql.Print.statement (Arc_sql.Of_arc.statement ~schemas prog)
        | `Pattern -> Arc_core.Pattern.to_string (Arc_core.Pattern.of_query prog.A.main)
        | `Skeleton -> Arc_core.Canon.skeleton prog.A.main
      in
      print_endline out)

let render_cmd =
  Cmd.v
    (Cmd.info "render" ~doc:"Translate a query into any ARC modality.")
    Term.(ret (const render $ input_lang $ output_fmt $ schemas_arg $ query_arg))

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate lang schemas text =
  wrap (fun () ->
      let schemas = List.map parse_schema schemas in
      let prog = parse_input lang text schemas in
      let env =
        if schemas = [] then Arc_core.Analysis.env ()
        else Arc_core.Analysis.env ~schemas ()
      in
      (match Arc_core.Analysis.validate ~env prog with
      | Ok () -> print_endline "valid: well-scoped variables, grouping, and heads"
      | Error es ->
          List.iter
            (fun e -> print_endline ("error: " ^ Arc_core.Analysis.error_to_string e))
            es;
          exit 1);
      List.iter
        (fun (name, safety) ->
          match safety with
          | Arc_core.Analysis.Safe ->
              Printf.printf "definition %s: safe (intensional)\n" name
          | Arc_core.Analysis.Unsafe r ->
              Printf.printf "definition %s: abstract (%s)\n" name r)
        (Arc_core.Analysis.program_safety ~env prog))

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check scoping, grouping legality, and definition safety.")
    Term.(ret (const validate $ input_lang $ schemas_arg $ query_arg))

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

module Obs = Arc_obs.Obs
module Sink = Arc_obs.Sink
module Metrics = Arc_obs.Metrics
module Json = Arc_obs.Json

(* Output-file convention shared by trace/analyze/metrics flags: no file
   or "-" means stdout. *)
let write_out ?label out s =
  match out with
  | None | Some "-" -> print_string s
  | Some file ->
      Out_channel.with_open_text file (fun oc -> output_string oc s);
      Option.iter (fun l -> Printf.printf "%s written to %s\n" l file) label

let write_metrics m file =
  let s =
    if Filename.check_suffix file ".json" then
      Json.pretty (Metrics.to_json m) ^ "\n"
    else Metrics.to_prometheus m
  in
  write_out ~label:"metrics" (Some file) s

(* Fold a span forest into the metrics registry: per-operator call
   counters, latency histograms, and every integer span attribute as a
   labeled counter. *)
let metrics_of_spans spans =
  let m = Metrics.create () in
  let rec walk (sp : Obs.span) =
    let labels = [ ("op", sp.Obs.name) ] in
    Metrics.inc m ~labels "arc_op_calls_total";
    Metrics.observe m ~labels "arc_op_duration_ns"
      (Int64.to_float sp.Obs.duration_ns);
    List.iter
      (fun (k, v) ->
        match v with
        | Obs.Int n when n >= 0 ->
            Metrics.inc m
              ~labels:(("counter", k) :: labels)
              ~by:n "arc_op_counter_total"
        | _ -> ())
      sp.Obs.attrs;
    List.iter walk sp.Obs.children
  in
  List.iter walk spans;
  m

(* per-operator totals and latency distributions, for --profile *)
let print_profile spans =
  print_endline "-- profile: operator metrics --";
  print_string (Metrics.summary (metrics_of_spans spans))

let profile_flag =
  Arg.(
    value & flag
    & info [ "p"; "profile" ]
        ~doc:
          "After the results, print per-operator call counts, cumulative \
           timings, and tuple counters collected by the tracer.")

(* budget / governance flags *)

module Budget = Arc_guard.Budget
module Gov = Arc_guard.Gov

let timeout_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout" ] ~docv:"MS"
        ~doc:"Wall-clock budget for evaluation, in milliseconds.")

let max_rows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rows" ] ~docv:"N"
        ~doc:"Cap on rows materialized across all collection heads.")

let max_iterations_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-iterations" ] ~docv:"N"
        ~doc:
          "Cap on fixpoint rounds per recursive stratum (default 100000).")

let max_bindings_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-bindings" ] ~docv:"N"
        ~doc:"Cap on scope binding environments enumerated.")

let max_depth_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-depth" ] ~docv:"N"
        ~doc:"Cap on collection nesting depth.")

let on_limit_arg =
  Arg.(
    value
    & opt (enum [ ("fail", `Fail); ("truncate", `Truncate) ]) `Fail
    & info [ "on-limit" ] ~docv:"POLICY"
        ~doc:
          "What to do when a budget limit trips: fail (typed error, \
           nonzero exit) or truncate (finish with a partial result and a \
           truncation report on stderr).")

let build_guard ~timeout ~max_rows ~max_iterations ~max_bindings ~max_depth
    ~on_limit =
  let budget =
    {
      Budget.default with
      Budget.max_rows;
      max_bindings;
      max_depth;
      max_iterations =
        (match max_iterations with
        | Some _ -> max_iterations
        | None -> Budget.default.Budget.max_iterations);
    }
  in
  let budget =
    match timeout with
    | Some ms -> Budget.with_timeout_ms ms budget
    | None -> budget
  in
  Gov.make ~on_limit budget

let print_guard_report gov =
  let r = Gov.report gov in
  if r.Gov.truncated then
    List.iter
      (fun (e : Gov.event) ->
        Printf.eprintf "warning: result truncated: %s limit %d reached (used %d)\n"
          (Budget.resource_to_string e.Gov.resource)
          e.Gov.limit e.Gov.used)
      r.Gov.events

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("reference", `Reference); ("plan", `Plan) ]) `Reference
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine: reference (the paper's conceptual strategy, \
           the semantic baseline) or plan (compiled logical/physical query \
           plans with hash-based operators; same results, see 'arc \
           explain').")

let no_stats_flag =
  Arg.(
    value & flag
    & info [ "no-stats" ]
        ~doc:
          "Skip the implicit ANALYZE of inline tables: the planner falls \
           back to the legacy structural heuristic instead of \
           statistics-driven selectivity estimates.")

let no_batch_flag =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:
          "Run the plan engine tuple-at-a-time instead of block-at-a-time. \
           Same results, same order; kept for ablation and debugging.")

let eval_run lang conv engine tables profile timeout max_rows max_iterations
    max_bindings max_depth on_limit no_stats no_batch text =
  wrap (fun () ->
      let tables = List.map parse_table tables in
      let db = Database.of_list tables in
      let db = if no_stats then db else Database.analyze db in
      let schemas =
        List.map
          (fun (n, r) ->
            (n, Arc_relation.Schema.attrs (Relation.schema r)))
          tables
      in
      let guard_requested =
        timeout <> None || max_rows <> None || max_iterations <> None
        || max_bindings <> None || max_depth <> None
      in
      match lang with
      | `Sql ->
          (* SQL input runs on the direct SQL evaluator, so SQL-only
             features (ORDER BY, LIMIT) work without translation *)
          if guard_requested then
            prerr_endline
              "warning: budget flags are ignored with -i sql (the direct \
               SQL evaluator is not governed); translate through ARC to \
               evaluate under a budget";
          print_endline
            (Relation.to_table (Arc_sql.Eval_sql.run_string ~db text));
          if profile then
            prerr_endline
              "profile: SQL input runs on the direct SQL evaluator, which is \
               not instrumented; use -i sql with 'arc trace' to trace the \
               translated ARC program"
      | _ -> (
          let tracer = if profile then Obs.collector () else Obs.null in
          let guard =
            build_guard ~timeout ~max_rows ~max_iterations ~max_bindings
              ~max_depth ~on_limit
          in
          let prog = parse_input lang text schemas in
          let outcome =
            match engine with
            | `Reference -> Arc_engine.Eval.run ~conv ~tracer ~guard ~db prog
            | `Plan ->
                Arc_engine.Exec.run ~conv ~tracer ~guard
                  ~batched:(not no_batch) ~db prog
          in
          (match outcome with
          | Arc_engine.Eval.Rows r ->
              print_endline (Relation.to_table (Relation.sort r))
          | Arc_engine.Eval.Truth t ->
              print_endline (Arc_value.Bool3.to_string t));
          print_guard_report guard;
          if profile then begin
            print_newline ();
            print_profile (Obs.spans tracer)
          end))

let eval_cmd =
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Evaluate a query against inline tables under a convention, \
          optionally within a resource budget (wall-clock deadline, row / \
          binding / iteration / depth caps).")
    Term.(
      ret
        (const eval_run $ input_lang $ conv_arg $ engine_arg $ tables_arg
       $ profile_flag $ timeout_arg $ max_rows_arg $ max_iterations_arg
       $ max_bindings_arg $ max_depth_arg $ on_limit_arg $ no_stats_flag
       $ no_batch_flag $ query_arg))

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_fmt =
  Arg.(
    value
    & opt (enum [ ("pretty", `Pretty); ("jsonl", `Jsonl); ("chrome", `Chrome) ])
        `Pretty
    & info [ "f"; "format" ] ~docv:"FMT"
        ~doc:
          "Trace format: pretty (EXPLAIN ANALYZE-style span tree), jsonl \
           (one flat JSON span per line), or chrome (Chrome trace-event \
           JSON for chrome://tracing / Perfetto).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the trace to $(docv) instead of stdout ('-' is stdout).")

let strategy_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("seminaive", Arc_engine.Eval.Seminaive);
             ("naive", Arc_engine.Eval.Naive);
           ])
        Arc_engine.Eval.Seminaive
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Recursion strategy: seminaive (default) or naive.")

let trace_run lang conv engine strategy fmt out tables text =
  wrap (fun () ->
      let tables = List.map parse_table tables in
      let db = Database.of_list tables in
      let schemas =
        List.map
          (fun (n, r) ->
            (n, Arc_relation.Schema.attrs (Relation.schema r)))
          tables
      in
      let prog = parse_input lang text schemas in
      let tracer = Obs.collector () in
      let outcome =
        match engine with
        | `Reference -> Arc_engine.Eval.run ~conv ~strategy ~tracer ~db prog
        | `Plan -> Arc_engine.Exec.run ~conv ~strategy ~tracer ~db prog
      in
      let spans = Obs.spans tracer in
      let emit = write_out ~label:"trace" out in
      match fmt with
      | `Pretty ->
          (match outcome with
          | Arc_engine.Eval.Rows r ->
              print_endline (Relation.to_table (Relation.sort r))
          | Arc_engine.Eval.Truth t ->
              print_endline (Arc_value.Bool3.to_string t));
          print_newline ();
          emit (Sink.pretty spans)
      | `Jsonl -> emit (Sink.jsonl spans)
      | `Chrome -> emit (Sink.chrome spans))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Evaluate a query with the tracer on and print an EXPLAIN \
          ANALYZE-style span tree (or machine-readable JSONL / Chrome \
          trace). SQL input is translated to ARC first, so the trace shows \
          the ARC engine's conceptual evaluation strategy.")
    Term.(
      ret
        (const trace_run $ input_lang $ conv_arg $ engine_arg $ strategy_arg
       $ trace_fmt $ trace_out $ tables_arg $ query_arg))

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let no_opt_flag =
  Arg.(
    value & flag
    & info [ "no-opt" ]
        ~doc:
          "Print only the raw lowered logical plan, skipping the rewrite \
           pipeline.")

let explain_run lang conv tables schemas no_opt no_stats text =
  wrap (fun () ->
      let tables = List.map parse_table tables in
      let db = Database.of_list tables in
      let db = if no_stats then db else Database.analyze db in
      let schemas =
        List.map parse_schema schemas
        @ List.map
            (fun (n, r) ->
              (n, Arc_relation.Schema.attrs (Relation.schema r)))
            tables
      in
      let prog = parse_input lang text schemas in
      let _ctx, raw, optimized, report =
        Arc_engine.Exec.compile ~conv ~db prog
      in
      let cenv =
        if Database.analyzed db then Some (Database.stats_bindings db)
        else None
      in
      if no_opt then
        print_string (Arc_plan.Explain.program_plan_to_string ?cenv raw)
      else begin
        print_endline "-- logical plan (lowered) --";
        print_string (Arc_plan.Explain.program_plan_to_string ?cenv raw);
        print_newline ();
        print_endline "-- physical plan (after rewrites) --";
        print_string (Arc_plan.Explain.program_plan_to_string ?cenv optimized);
        print_newline ();
        print_endline (Arc_plan.Explain.report_to_string report)
      end)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Compile a query to the plan engine's logical plan, show the plan \
          before and after the optimizer rewrite pipeline \
          (predicate-pushdown, decorrelate-exists, hash-join-order, \
          prune-columns), and report which passes changed the plan. Tables \
          (-t) provide cardinality estimates; schemas (-s) suffice for \
          shape-only explanation.")
    Term.(
      ret
        (const explain_run $ input_lang $ conv_arg $ tables_arg $ schemas_arg
       $ no_opt_flag $ no_stats_flag $ query_arg))

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

module Ir = Arc_plan.Ir
module Explain = Arc_plan.Explain

let warn_q_arg =
  Arg.(
    value & opt float 4.0
    & info [ "warn-q-error" ] ~docv:"Q"
        ~doc:
          "Flag nodes whose Q-error — max(est,act)/min(est,act), both \
           clamped to at least 1 — reaches $(docv). These are the \
           misestimates that can drive a bad join order.")

let analyze_fmt =
  Arg.(
    value
    & opt (enum [ ("pretty", `Pretty); ("json", `Json) ]) `Pretty
    & info [ "f"; "format" ] ~docv:"FMT"
        ~doc:
          "Output format: pretty (annotated plan tree) or json (flat \
           per-node records).")

let analyze_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the analysis to $(docv) instead of stdout ('-' is \
           stdout).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Export the run's metrics registry to $(docv): Prometheus text \
           format, or the JSON exposition when $(docv) ends in .json. '-' \
           writes to stdout.")

let analyze_json infos =
  Json.List
    (List.map
       (fun (ni : Explain.node_info) ->
         let base =
           [
             ("id", Json.Int ni.Explain.ni_id);
             ("def", Json.Str ni.Explain.ni_def);
             ("op", Json.Str ni.Explain.ni_op);
             ("label", Json.Str ni.Explain.ni_label);
             ("est_rows", Json.Int ni.Explain.ni_est);
             ("est_src", Json.Str ni.Explain.ni_src);
           ]
         in
         let actual =
           match ni.Explain.ni_actual with
           | None -> [ ("executed", Json.Bool false) ]
           | Some a ->
               [
                 ("executed", Json.Bool true);
                 ("invocations", Json.Int a.Ir.a_invocations);
                 ("act_rows", Json.Int a.Ir.a_rows);
                 ("incl_ns", Json.Int (Int64.to_int a.Ir.a_incl_ns));
                 ("excl_ns", Json.Int (Int64.to_int ni.Explain.ni_excl_ns));
               ]
               @ (match ni.Explain.ni_q with
                 | Some q -> [ ("q_error", Json.Float q) ]
                 | None -> [])
               @ (if a.Ir.a_build > 0 || a.Ir.a_probe > 0 then
                    [
                      ("build", Json.Int a.Ir.a_build);
                      ("probe", Json.Int a.Ir.a_probe);
                      ("matches", Json.Int a.Ir.a_matches);
                    ]
                  else [])
               @
               if a.Ir.a_iterations > 0 then
                 [
                   ("iterations", Json.Int a.Ir.a_iterations);
                   ( "deltas",
                     Json.List
                       (List.rev_map (fun d -> Json.Int d) a.Ir.a_deltas) );
                 ]
               else []
         in
         Json.Obj (base @ actual))
       infos)

let analyze_run lang conv strategy tables warn_q fmt out metrics_out no_stats
    no_batch text =
  wrap (fun () ->
      let tables = List.map parse_table tables in
      let db = Database.of_list tables in
      let db = if no_stats then db else Database.analyze db in
      let schemas =
        List.map
          (fun (n, r) ->
            (n, Arc_relation.Schema.attrs (Relation.schema r)))
          tables
      in
      let prog = parse_input lang text schemas in
      let ctx, _raw, optimized, _report =
        Arc_engine.Exec.compile ~conv ~strategy ~db prog
      in
      let cenv =
        if Database.analyzed db then Some (Database.stats_bindings db)
        else None
      in
      let stats = Ir.fresh_stats () in
      let outcome =
        Arc_engine.Exec.exec_program ~stats ~batched:(not no_batch) ctx
          optimized
      in
      (match fmt with
      | `Pretty ->
          (match outcome with
          | Arc_engine.Eval.Rows r ->
              print_endline (Relation.to_table (Relation.sort r))
          | Arc_engine.Eval.Truth t ->
              print_endline (Arc_value.Bool3.to_string t));
          print_newline ();
          write_out ~label:"analysis" out
            (Explain.analyze_to_string ~warn_q_error:warn_q ?cenv ~stats
               optimized)
      | `Json ->
          write_out ~label:"analysis" out
            (Json.pretty
               (analyze_json (Explain.analyze_info ?cenv optimized ~stats))
            ^ "\n"));
      Option.iter
        (fun file ->
          let m = Metrics.create () in
          Arc_engine.Exec.export_stats m optimized stats;
          write_metrics m file)
        metrics_out)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "EXPLAIN ANALYZE for the plan engine: compile and execute a query \
          with per-node statistics on, then print the physical plan tree \
          annotated with estimated vs actual rows, Q-error, exclusive time \
          per node, hash-join build/probe/match counts, and fixpoint \
          iteration deltas. Nodes whose Q-error reaches --warn-q-error are \
          flagged — those misestimates are what the join-order heuristic \
          acted on. --metrics-out additionally exports operator-level \
          metrics (Prometheus text or JSON).")
    Term.(
      ret
        (const analyze_run $ input_lang $ conv_arg $ strategy_arg
       $ tables_arg $ warn_q_arg $ analyze_fmt $ analyze_out
       $ metrics_out_arg $ no_stats_flag $ no_batch_flag $ query_arg))

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let only_arg =
  Arg.(
    value & opt_all string []
    & info [ "only" ] ~docv:"REL"
        ~doc:"Collect statistics only for relation $(docv) (repeatable).")

let stats_run tables only =
  wrap (fun () ->
      let tables = List.map parse_table tables in
      if tables = [] then die "no tables given (-t)";
      let db = Database.of_list tables in
      let only = match only with [] -> None | l -> Some l in
      let db = Database.analyze ?only db in
      List.iter
        (fun (n, s) -> print_string (Arc_relation.Stats.to_string ~name:n s))
        (Database.stats_bindings db))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "ANALYZE inline tables and print the collected per-column \
          statistics: row count, distinct count, null count, min/max \
          range, most-common values, and equi-depth histogram buckets — \
          the input to the plan engine's cost model. 'arc \
          eval/explain/analyze' collect the same statistics implicitly; \
          --no-stats disables that.")
    Term.(ret (const stats_run $ tables_arg $ only_arg))

(* ------------------------------------------------------------------ *)
(* fragment                                                            *)
(* ------------------------------------------------------------------ *)

let fragment lang schemas text =
  wrap (fun () ->
      let schemas = List.map parse_schema schemas in
      let prog = parse_input lang text schemas in
      let module F = Arc_core.Fragment in
      Printf.printf "fragment: %s\n" (F.name prog.A.main);
      if prog.A.defs <> [] then
        Printf.printf "recursion: %b\n" (F.uses_recursion prog);
      let f = F.features_program prog in
      let flags =
        [
          ("aggregation", f.F.uses_aggregation);
          ("grouping", f.F.uses_grouping);
          ("negation", f.F.uses_negation);
          ("disjunction", f.F.uses_disjunction);
          ("join annotations", f.F.uses_join_annotations);
          ("nested collections", f.F.uses_nested_collections);
          ("arithmetic", f.F.uses_arithmetic);
          ("order comparisons", f.F.uses_order_comparisons);
          ("null predicates", f.F.uses_null_predicates);
          ("like", f.F.uses_like);
        ]
      in
      List.iter (fun (n, b) -> Printf.printf "  %-20s %b\n" n b) flags;
      Printf.printf "pattern: %s\n"
        (Arc_core.Pattern.to_string (Arc_core.Pattern.of_query prog.A.main)))

let fragment_cmd =
  Cmd.v
    (Cmd.info "fragment"
       ~doc:"Classify a query's language fragment and pattern signature.")
    Term.(ret (const fragment $ input_lang $ schemas_arg $ query_arg))

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let gold_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"GOLD" ~doc:"Gold (reference) SQL query.")

let cand_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CANDIDATE" ~doc:"Candidate SQL query.")

let compare_q schemas gold candidate =
  wrap (fun () ->
      let schemas = List.map parse_schema schemas in
      let r = Arc_intent.Intent.compare_sql ~schemas ~gold ~candidate () in
      print_endline (Arc_intent.Intent.report_to_string r))

let compare_cmd =
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Intent-based comparison of two SQL queries (NL2SQL validation).")
    Term.(ret (const compare_q $ schemas_arg $ gold_arg $ cand_arg))

(* ------------------------------------------------------------------ *)
(* catalog                                                             *)
(* ------------------------------------------------------------------ *)

let catalog_id =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"ID" ~doc:"Experiment id (omit to list all).")

let show_artifacts =
  Arg.(value & flag & info [ "a"; "artifacts" ] ~doc:"Print the artifacts too.")

let markdown_flag =
  Arg.(
    value & flag
    & info [ "markdown" ]
        ~doc:"Emit the whole catalog as a paper-vs-measured markdown report.")

let catalog_markdown () =
  print_endline "# EXPERIMENTS — paper vs measured";
  print_endline "";
  print_endline
    "Regenerate with `dune exec bin/arc.exe -- catalog --markdown`, or watch \
     the same\nchecks run inside `dune exec bench/main.exe` (Part 1) and \
     `dune runtest`\n(suite `arc_catalog`). Every row is produced by \
     executing the experiment, not\nby hand.";
  print_endline "";
  print_endline
    "The bench harness also writes machine-readable per-experiment \
     wall-times and\nper-operator counters to `BENCH_1.json`; traces of \
     individual runs are\navailable via `arc trace` — see \
     [docs/observability.md](docs/observability.md).";
  print_endline "";
  print_endline "## Guarded runs";
  print_endline "";
  print_endline
    "Any experiment can be re-run under a resource budget — see\n\
     [docs/robustness.md](docs/robustness.md). A divergent recursive \
     program\n(counting up through the `\"Add\"` external) demonstrates the \
     two policies:";
  print_endline "";
  print_endline "```";
  print_endline
    "arc eval -t \"S(v)=0\" --timeout 200 --on-limit fail \\";
  print_endline
    "  'def N := {N(x) | exists s in S[N.x = s.v] or exists n in N, f in \
     \"Add\"";
  print_endline
    "  [f.left = n.x and f.right = 1 and N.x = f.out]} {Q(x) | exists n in \
     N[Q.x = n.x]}'";
  print_endline
    "# => arc: budget exceeded: wall-clock deadline (limit 200ms, used \
     200ms)   (exit != 0)";
  print_endline "";
  print_endline "arc eval -t \"S(v)=0\" --max-iterations 5 --on-limit truncate '…same query…'";
  print_endline
    "# => the first 6 values of N, plus on stderr:";
  print_endline
    "# warning: result truncated: fixpoint iterations limit 5 reached (used \
     6)";
  print_endline "```";
  print_endline "";
  print_endline
    "`arc chaos` smoke-tests the fault-injection harness (retry \
     transparency,\ntyped exhaustion, latency injection); the \
     guarded-vs-unguarded timing\nablation is Part 6 of `dune exec \
     bench/main.exe`, written to `BENCH_3.json`.";
  print_endline "";
  print_endline "## Engine ablation: reference evaluator vs compiled plans";
  print_endline "";
  print_endline
    "Every query here can also run on the plan engine (`arc eval --engine \
     plan`),\nwhich compiles ARC cores to hash-join/hash-aggregate physical \
     plans — see\n[docs/planner.md](docs/planner.md) and `arc explain`. \
     Part 7 of `dune exec\nbench/main.exe` checks bag-equality of the two \
     engines on its workloads and\nwrites the timing ablation to \
     `BENCH_4.json`. Measured on this checkout\n(seed evaluator vs PR-4 \
     plan engine, times per run):";
  print_endline "";
  print_endline "| workload | reference | plan | speedup |";
  print_endline "|---|---|---|---|";
  print_endline
    "| join+aggregate: analytics rollup, 400 orders | 10.26 ms | 0.79 ms | \
     13.0x |";
  print_endline
    "| matrix multiplication 16x16 (eq26) | 20.97 ms | 1.29 ms | 16.2x |";
  print_endline
    "| recursion: TC chain 48 (eq16) | 87.0 ms | 78.8 ms | 1.1x |";
  print_endline "";
  print_endline
    "The join-heavy shapes win by an order of magnitude because the \
     reference\nenumerates scopes as cross products; the recursive chain is \
     dominated by\nfixpoint dedup/union work both engines share, so the \
     hash join there only\ntrims the per-iteration joins. Re-measure with \
     `dune exec bench/main.exe`\n(numbers land in `BENCH_4.json`).";
  List.iter
    (fun (e : Arc_catalog.Catalog.entry) ->
      Printf.printf "\n## %s — %s\n\n*Paper:* %s\n\n"
        e.Arc_catalog.Catalog.id e.Arc_catalog.Catalog.title
        e.Arc_catalog.Catalog.paper_ref;
      print_endline "| paper-reported behavior | expected | measured | ok |";
      print_endline "|---|---|---|---|";
      List.iter
        (fun (o : Arc_catalog.Catalog.outcome) ->
          Printf.printf "| %s | `%s` | `%s` | %s |\n"
            o.Arc_catalog.Catalog.label o.Arc_catalog.Catalog.expected
            o.Arc_catalog.Catalog.measured
            (if o.Arc_catalog.Catalog.ok then "yes" else "**NO**"))
        (e.Arc_catalog.Catalog.run ()))
    Arc_catalog.Catalog.all

let catalog id artifacts markdown =
  if markdown then wrap catalog_markdown
  else
  wrap (fun () ->
      match id with
      | None ->
          List.iter
            (fun (e : Arc_catalog.Catalog.entry) ->
              Printf.printf "%-20s %-12s %s\n" e.Arc_catalog.Catalog.id
                ("(" ^ e.Arc_catalog.Catalog.paper_ref ^ ")")
                e.Arc_catalog.Catalog.title)
            Arc_catalog.Catalog.all
      | Some id -> (
          match Arc_catalog.Catalog.by_id id with
          | None -> die "no experiment %S (try 'arc catalog' to list)" id
          | Some e ->
              Printf.printf "%s — %s\n(%s)\n\n" e.Arc_catalog.Catalog.id
                e.Arc_catalog.Catalog.title e.Arc_catalog.Catalog.paper_ref;
              List.iter
                (fun o ->
                  print_endline
                    ("  " ^ Arc_catalog.Catalog.outcome_to_string o))
                (e.Arc_catalog.Catalog.run ());
              if artifacts then
                List.iter
                  (fun (name, body) ->
                    Printf.printf "\n--- %s ---\n%s\n" name body)
                  (e.Arc_catalog.Catalog.artifacts ())))

let catalog_cmd =
  Cmd.v
    (Cmd.info "catalog"
       ~doc:"Browse and re-run the paper's experiment catalog.")
    Term.(ret (const catalog $ catalog_id $ show_artifacts $ markdown_flag))

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Seed for the fault-injection RNG (probabilistic faults).")

let chaos_run seed metrics_out =
  wrap (fun () ->
      let module E = Arc_engine.Externals in
      let module C = Arc_engine.Chaos in
      let db =
        Database.of_list
          [
            ( "R",
              Relation.of_rows [ "a" ]
                [ [ V.Int 1 ]; [ V.Int 2 ]; [ V.Int 3 ] ] );
          ]
      in
      let prog =
        Arc_syntax.Parser.program_of_string
          "{Q(s) | exists r in R, f in \"Add\"[f.left = r.a and f.right = 1 \
           and Q.s = f.out]}"
      in
      let run externals =
        match Arc_engine.Eval.run ~externals ~db prog with
        | Arc_engine.Eval.Rows r -> Relation.sort r
        | Arc_engine.Eval.Truth _ -> die "chaos: expected a collection result"
      in
      let clean = run E.standard in
      (* fail-once faults must be absorbed by the retry combinator *)
      let st = C.stats () in
      let impls =
        List.map
          (fun i -> E.with_retry (C.wrap ~seed ~stats:st C.Fail_once i))
          E.standard
      in
      if not (Relation.equal_set (run impls) clean) then
        die "chaos: fail-once + retry differs from the clean run";
      Printf.printf
        "fail-once + retry: transparent (%d calls, %d injected failures)\n"
        st.C.calls st.C.failures;
      (* a fail-always external must exhaust retries into a typed error *)
      let impls =
        List.map
          (fun i -> E.with_retry ~attempts:3 (C.wrap ~seed (C.Fail_every 1) i))
          E.standard
      in
      (match run impls with
      | _ -> die "chaos: fail-always external unexpectedly succeeded"
      | exception Arc_engine.Eval.Eval_error e -> (
          match e.Arc_guard.Error.kind with
          | Arc_guard.Error.External_failure { attempts = 3; _ } ->
              Printf.printf "fail-always + retry: %s\n"
                (Arc_guard.Error.to_string e)
          | _ ->
              die "chaos: expected External_failure after 3 attempts, got: %s"
                (Arc_guard.Error.to_string e)));
      (* latency injection goes through the injectable sleep, results
         unchanged *)
      let slept = ref 0 in
      let impls =
        C.wrap_all
          ~sleep:(fun ns -> slept := !slept + ns)
          (C.Latency 5_000_000) E.standard
      in
      if not (Relation.equal_set (run impls) clean) then
        die "chaos: latency run differs from the clean run";
      Printf.printf
        "latency injection: %d ns injected via sleep hook, results unchanged\n"
        !slept;
      print_endline "chaos smoke: all scenarios passed";
      Option.iter
        (fun file ->
          let m = Metrics.create () in
          let labels = [ ("scenario", "fail_once") ] in
          Metrics.inc m ~labels ~by:st.C.calls "arc_chaos_calls_total";
          Metrics.inc m ~labels ~by:st.C.failures
            "arc_chaos_injected_failures_total";
          Metrics.inc m ~by:!slept "arc_chaos_injected_latency_ns_total";
          write_metrics m file)
        metrics_out)

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection smoke scenarios: a fail-once external \
          must be absorbed by retry, a fail-always external must surface \
          as a typed failure after exhausting retries, and injected \
          latency must not change results. Exits nonzero if any scenario \
          misbehaves. With --metrics-out, exports the campaign counters \
          (calls, injected failures, injected latency) as metrics.")
    Term.(ret (const chaos_run $ chaos_seed $ metrics_out_arg))

(* ------------------------------------------------------------------ *)
(* ivm                                                                 *)
(* ------------------------------------------------------------------ *)

module Ivm = Arc_ivm.Ivm

let views_arg =
  Arg.(
    value & opt_all string []
    & info [ "view" ] ~docv:"NAME=QUERY"
        ~doc:
          "Register a maintained view: a name, '=', and an ARC program \
           (definitions allowed). Repeatable.")

let batches_arg =
  Arg.(
    value & opt_all string []
    & info [ "batch" ] ~docv:"FILE"
        ~doc:
          "Apply a batch of signed updates, in order. CSV lines are \
           'relation,multiplicity,v1,v2,...' (negative multiplicity \
           deletes); with a .jsonl extension each line is \
           '{\"rel\": \"R\", \"n\": -1, \"row\": [1, 10]}' ('n' defaults \
           to 1). Repeatable.")

let ivm_check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "After each batch, re-evaluate every view from scratch and fail \
           (exit 1) unless the maintained results are bag-equal — the \
           differential oracle.")

let batch_row db rel vs =
  match Database.find_opt db rel with
  | None -> die "batch references unknown relation %S" rel
  | Some r ->
      Arc_relation.Tuple.make (Relation.schema r) (Array.of_list vs)

let parse_batch_csv db text : Ivm.batch =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.split_on_char ',' line with
        | rel :: mult :: vs -> (
            match int_of_string_opt (String.trim mult) with
            | None -> die "bad batch line %S (multiplicity not an int)" line
            | Some n ->
                Some
                  ( String.trim rel,
                    [ (batch_row db (String.trim rel) (List.map parse_value vs), n) ]
                  ))
        | _ -> die "bad batch line %S (expected rel,mult,v1,...)" line)
    (String.split_on_char '\n' text)

let parse_batch_jsonl db text : Ivm.batch =
  let value_of_json = function
    | Json.Null -> V.Null
    | Json.Bool b -> V.Bool b
    | Json.Int n -> V.Int n
    | Json.Float f -> V.Float f
    | Json.Str s -> V.Str s
    | j -> die "bad batch value %s" (Json.to_string j)
  in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" then None
      else
        match Json.parse line with
        | Error m -> die "bad batch line %S: %s" line m
        | Ok j ->
            let rel =
              match Json.member "rel" j with
              | Some (Json.Str r) -> r
              | _ -> die "batch line %S lacks a \"rel\" field" line
            in
            let n =
              match Json.member "n" j with
              | Some (Json.Int n) -> n
              | None -> 1
              | Some _ -> die "batch line %S: \"n\" must be an int" line
            in
            let vs =
              match Json.member "row" j with
              | Some (Json.List vs) -> List.map value_of_json vs
              | _ -> die "batch line %S lacks a \"row\" array" line
            in
            Some (rel, [ (batch_row db rel vs, n) ]))
    (String.split_on_char '\n' text)

let parse_batch_file db file : Ivm.batch =
  let text = In_channel.with_open_text file In_channel.input_all in
  if Filename.check_suffix file ".jsonl" then parse_batch_jsonl db text
  else parse_batch_csv db text

let parse_view s =
  match String.index_opt s '=' with
  | Some k when k > 0 ->
      ( String.trim (String.sub s 0 k),
        Arc_syntax.Parser.program_of_string
          (String.sub s (k + 1) (String.length s - k - 1)) )
  | _ -> die "bad view %S (expected NAME={Q(...) | ...})" s

let ivm_run conv tables views batches check timeout max_rows max_iterations
    max_bindings max_depth on_limit metrics_out =
  wrap (fun () ->
      if views = [] then die "no views; pass --view NAME=QUERY at least once";
      let db = Database.of_list (List.map parse_table tables) in
      let m = Metrics.create () in
      let ivm = Ivm.create ~conv ~metrics:m ~db () in
      List.iter
        (fun vs ->
          let name, prog = parse_view vs in
          Ivm.register ivm ~name prog)
        views;
      Printf.printf "registered %d view(s); maintenance state holds %d rows\n"
        (List.length (Ivm.views ivm))
        (Ivm.state_rows ivm);
      List.iteri
        (fun bi file ->
          let batch = parse_batch_file (Ivm.db ivm) file in
          let guard =
            build_guard ~timeout ~max_rows ~max_iterations ~max_bindings
              ~max_depth ~on_limit
          in
          let reports = Ivm.apply ~guard ivm batch in
          Printf.printf "batch %d (%s): %d row(s) over %d relation(s)\n"
            (bi + 1) file (Ivm.batch_rows batch) (List.length batch);
          List.iter
            (fun (r : Ivm.view_report) ->
              Printf.printf "  %-16s %-11s |output delta|=%-5d %s%.3f ms\n"
                r.Ivm.vr_view r.Ivm.vr_mode r.Ivm.vr_out_delta
                (if r.Ivm.vr_fallbacks > 0 then
                   Printf.sprintf "fallbacks=%d " r.Ivm.vr_fallbacks
                 else "")
                (Int64.to_float r.Ivm.vr_ns /. 1e6))
            reports;
          print_guard_report guard;
          if check then
            match Ivm.check ivm with
            | [] -> Printf.printf "  check: ok (views bag-equal to re-evaluation)\n"
            | mismatches ->
                List.iter
                  (fun (v, maintained, fresh) ->
                    Printf.eprintf
                      "check FAILED for %s:\nmaintained:\n%sfresh:\n%s" v
                      (Relation.to_table maintained)
                      (Relation.to_table fresh))
                  mismatches;
                die "differential check failed after batch %d" (bi + 1))
        batches;
      List.iter
        (fun name ->
          Printf.printf "-- %s --\n%s" name
            (Relation.to_table (Ivm.result ivm name)))
        (Ivm.views ivm);
      Option.iter (write_metrics m) metrics_out)

let ivm_cmd =
  Cmd.v
    (Cmd.info "ivm"
       ~doc:
         "Incremental view maintenance: register views over inline tables, \
          apply signed update batches (CSV or JSONL), and keep the view \
          results up to date by delta propagation — counting for \
          non-recursive plans, over-delete/re-derive (DRed) for recursive \
          strata, counted fallback re-evaluation otherwise. With --check, \
          every batch is verified against from-scratch re-evaluation. See \
          docs/ivm.md.")
    Term.(
      ret
        (const ivm_run $ conv_arg $ tables_arg $ views_arg $ batches_arg
       $ ivm_check_flag $ timeout_arg $ max_rows_arg $ max_iterations_arg
       $ max_bindings_arg $ max_depth_arg $ on_limit_arg $ metrics_out_arg))

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_seed =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Campaign seed. The same (seed, count) pair replays the same \
           cases exactly.")

let fuzz_count =
  Arg.(
    value & opt int 200
    & info [ "count" ] ~docv:"N" ~doc:"Number of fuzz iterations to run.")

let fuzz_shrink =
  Arg.(
    value & opt bool true
    & info [ "shrink" ] ~docv:"BOOL"
        ~doc:
          "Greedily shrink each divergent case (preserving its divergence \
           kind) before saving the repro.")

let fuzz_ivm =
  Arg.(
    value & flag
    & info [ "ivm" ]
        ~doc:
          "IVM mode: instead of the cross-engine oracles, register each \
           generated case as a maintained view under every convention \
           combo, apply random signed batches derived from the seed, and \
           assert the incrementally maintained result stays bag-equal to \
           from-scratch re-evaluation after every batch.")

let fuzz_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Write each divergent case as a replayable repro directory \
           (query.arc + per-relation CSVs + meta.txt) under $(docv), \
           created if missing.")

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let fuzz_run seed count shrink ivm out metrics_out =
  wrap (fun () ->
      Option.iter mkdirs out;
      let tracer = Obs.collector () in
      let stats, findings =
        Arc_fuzz.Driver.run ~tracer ~shrink ~ivm ?out ~seed ~count ()
      in
      List.iter
        (fun (f : Arc_fuzz.Driver.finding) ->
          Printf.printf "DIVERGENCE %s\n" f.Arc_fuzz.Driver.f_name;
          List.iter
            (fun d ->
              Printf.printf "  %s\n" (Arc_fuzz.Oracle.divergence_to_string d))
            f.Arc_fuzz.Driver.f_divergences;
          Option.iter
            (fun p -> Printf.printf "  repro: %s\n" p)
            f.Arc_fuzz.Driver.f_repro)
        findings;
      let spans = Obs.spans tracer in
      Printf.printf "fuzz: %d cases generated, %d skipped, %d diverged (seed %d)\n"
        (Obs.counter_total spans "fuzz.generated")
        (Obs.counter_total spans "fuzz.skipped")
        (Obs.counter_total spans "fuzz.diverged")
        seed;
      Option.iter
        (fun file ->
          let m = Metrics.create () in
          Metrics.inc m
            ~by:(Obs.counter_total spans "fuzz.generated")
            "arc_fuzz_generated_total";
          Metrics.inc m
            ~by:(Obs.counter_total spans "fuzz.skipped")
            "arc_fuzz_skipped_total";
          Metrics.inc m
            ~by:(Obs.counter_total spans "fuzz.diverged")
            "arc_fuzz_diverged_total";
          Metrics.set_gauge m "arc_fuzz_seed" (Float.of_int seed);
          write_metrics m file)
        metrics_out;
      if stats.Arc_fuzz.Driver.diverged > 0 then exit 1)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random validated ARC cores and \
          NULL-bearing databases, run them through the reference evaluator \
          and the plan engine under every convention combination and both \
          recursion strategies, round-trip them through the SQL / Datalog / \
          TRC frontends where the fragment permits, and greedily shrink any \
          divergence into a replayable repro directory. Exits nonzero if \
          any divergence was found. See docs/fuzzing.md. With \
          --metrics-out, exports the campaign counters as metrics.")
    Term.(
      ret
        (const fuzz_run $ fuzz_seed $ fuzz_count $ fuzz_shrink $ fuzz_ivm
       $ fuzz_out $ metrics_out_arg))

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "arc" ~version:"1.0.0"
       ~doc:
         "Abstract Relational Calculus: a semantics-first reference \
          metalanguage for relational queries.")
    [
      render_cmd; validate_cmd; eval_cmd; explain_cmd; analyze_cmd; stats_cmd;
      trace_cmd;
      fragment_cmd; compare_cmd; catalog_cmd; chaos_cmd; fuzz_cmd; ivm_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
