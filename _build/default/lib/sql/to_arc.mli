(** SQL → ARC translation (the paper's Section 5 "SQL↔ARC translator",
    forward direction).

    Translation preserves the relational pattern:
    {ul
    {- FROM aliases become range variables with the same names, so
       correlated subqueries resolve naturally;}
    {- INNER/comma joins become plain bindings; LEFT/FULL joins become join
       annotations (Section 2.11); derived tables and LATERAL subqueries
       become nested collections (Section 2.4);}
    {- GROUP BY becomes a grouping operator; HAVING becomes a selection
       outside a nested grouping collection (Eq 8); aggregates stay in the
       single scope that SQL gives them (FIO);}
    {- scalar subqueries containing aggregates become correlated nested
       collections with γ∅ — the lateral-join form the paper argues is the
       faithful reading (Section 2.12, Fig 13);}
    {- [NOT IN] is rewritten to [NOT EXISTS] with explicit NULL checks,
       replicating SQL's three-valued behavior in two-valued logic
       (Section 2.10, Eq 17);}
    {- [DISTINCT] and set-operation deduplication become grouping on all
       output attributes (Section 2.7);}
    {- WITH [RECURSIVE] CTEs become ARC definitions (Section 2.9).}}

    Raises {!Unsupported} on constructs outside the translatable fragment
    (e.g. EXCEPT ALL, scalar subqueries without aggregates — whose
    empty-input NULL cannot be expressed without an outer-join annotation). *)

exception Unsupported of string

val statement :
  ?schemas:(string * string list) list -> Ast.statement -> Arc_core.Ast.program
(** [schemas] maps base-relation names to their attributes; required to
    resolve unqualified column references and [SELECT] lists in the presence
    of several bindings. *)

val set_query :
  ?schemas:(string * string list) list ->
  Ast.set_query ->
  Arc_core.Ast.collection
