(** Direct SQL evaluator, independent of the ARC engine.

    Implements textbook SQL semantics — bag results unless DISTINCT,
    three-valued logic with SQL NULL behavior (including the NOT IN trap of
    the paper's Section 2.10), aggregates returning NULL on empty input,
    one-row results for ungrouped aggregates, correlated and LATERAL
    subqueries re-evaluated per outer row, LEFT/FULL joins with NULL padding,
    and WITH RECURSIVE by least fixed point.

    Used to cross-validate the SQL→ARC translation: for every query in the
    paper's figures, [Eval_sql.run] and [Arc_engine.Eval.run ∘ To_arc.statement]
    must agree. *)

exception Sql_error of string

val run :
  db:Arc_relation.Database.t -> Ast.statement -> Arc_relation.Relation.t
(** Raises {!Sql_error} on unknown relations/columns, ambiguous unqualified
    columns, scalar subqueries returning more than one row, or ungrouped
    non-aggregate SELECT items in a grouped query. *)

val run_string :
  db:Arc_relation.Database.t -> string -> Arc_relation.Relation.t
(** Parse (raising {!Parse.Parse_error}) and run. *)
