(** SQL lexer (case-insensitive keywords, identifiers keep their case). *)

type token =
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR  (** multiplication or count star, decided by the parser *)
  | IDENT of string
  | KW of string  (** lower-cased keyword *)
  | NUMBER of Arc_value.Value.t
  | STRING of string
  | OP of string  (** [= <> < <= > >= + - /] *)
  | EOF

exception Lex_error of string * int

val tokenize : string -> token list
val token_to_string : token -> string
