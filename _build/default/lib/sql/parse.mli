(** Recursive-descent SQL parser for the subset described in {!Ast}. *)

exception Parse_error of string

val statement_of_string : string -> Ast.statement
val set_query_of_string : string -> Ast.set_query
val cond_of_string : string -> Ast.cond
val expr_of_string : string -> Ast.expr
