lib/sql/of_arc.ml: Arc_core Arc_value Ast List Option Printf
