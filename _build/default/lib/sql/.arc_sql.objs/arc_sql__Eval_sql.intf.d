lib/sql/eval_sql.mli: Arc_relation Ast
