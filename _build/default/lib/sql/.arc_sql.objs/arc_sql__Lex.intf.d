lib/sql/lex.mli: Arc_value
