lib/sql/lex.ml: Arc_value List Printf String
