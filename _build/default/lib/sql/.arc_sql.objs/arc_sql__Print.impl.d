lib/sql/print.ml: Arc_value Ast List Printf String
