lib/sql/print.mli: Ast
