lib/sql/to_arc.ml: Arc_core Arc_value Ast List Option Printf
