lib/sql/parse.ml: Arc_value Array Ast Lex Printf String
