lib/sql/to_arc.mli: Arc_core Ast
