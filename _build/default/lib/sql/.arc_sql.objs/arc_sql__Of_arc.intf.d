lib/sql/of_arc.mli: Arc_core Arc_value Ast
