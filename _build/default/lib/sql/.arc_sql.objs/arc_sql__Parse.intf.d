lib/sql/parse.mli: Ast
