lib/sql/eval_sql.ml: Arc_relation Arc_value Array Ast Hashtbl List Option Parse Printf String
