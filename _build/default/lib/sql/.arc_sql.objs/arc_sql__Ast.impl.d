lib/sql/ast.ml: Arc_value Printf
