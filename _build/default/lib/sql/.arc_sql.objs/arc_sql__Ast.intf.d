lib/sql/ast.mli: Arc_value
