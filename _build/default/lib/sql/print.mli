(** SQL pretty-printer. Produces text re-accepted by {!Parse}
    (print/parse round-trips). *)

val expr : Ast.expr -> string
val cond : Ast.cond -> string
val set_query : ?indent:int -> Ast.set_query -> string
val statement : Ast.statement -> string
