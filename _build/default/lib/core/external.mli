(** Declarations of external relations (paper, Section 2.13.1).

    An external relation reifies computation (arithmetic, comparisons,
    string matching) as a relation with possibly infinite extension, accessed
    through {e access patterns} [35]: a mode lists which attributes must be
    bound before the relation can produce (or check) the remaining ones.
    [Minus(left, right, out)] supports the modes
    [left right → out], [left out → right], [right out → left], and the
    all-bound check.

    This module holds only the {e declarations} used by validation and the
    modalities; executable semantics live in [Arc_engine.Externals]. *)

type mode = { m_inputs : string list; m_outputs : string list }

type decl = { ext_name : string; ext_attrs : string list; ext_modes : mode list }

val arithmetic : string -> decl
(** [arithmetic name] declares a ternary relation [name(left, right, out)]
    in which any two attributes determine the third
    (suitable for "+", "-", "*", "Minus", "Add", ...). *)

val product_style : string -> decl
(** Like {!arithmetic} but with the paper's Fig 20 attribute names
    [($1, $2, out)]. *)

val comparison : string -> decl
(** [comparison name] declares a binary check-only relation
    [name(left, right)] (suitable for ">", "Bigger", ...). *)

val standard : decl list
(** The externals used by the paper's examples: "Minus", "Add", "-", "+",
    "*" (Fig 20 style), "Bigger", ">". *)

val find : decl list -> string -> decl option
