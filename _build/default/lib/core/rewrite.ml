open Ast

(* ------------------------------------------------------------------ *)
(* Negation normalization                                              *)
(* ------------------------------------------------------------------ *)

let rec push_negation f =
  match f with
  | True | Pred _ -> f
  | And fs -> And (List.map push_negation fs)
  | Or fs -> Or (List.map push_negation fs)
  | Exists s -> Exists { s with body = push_negation s.body }
  | Not g -> (
      match g with
      | Not h -> push_negation h
      | Or fs -> And (List.map (fun h -> push_negation (Not h)) fs)
      | And fs -> Or (List.map (fun h -> push_negation (Not h)) fs)
      | h -> Not (push_negation h))

(* ------------------------------------------------------------------ *)
(* Unnesting                                                           *)
(* ------------------------------------------------------------------ *)

let scope_vars s = List.map (fun b -> b.var) s.bindings

let rec merge_formula f =
  match f with
  | True | Pred _ -> f
  | And fs -> And (List.map merge_formula fs)
  | Or fs -> Or (List.map merge_formula fs)
  | Not g -> Not (merge_formula g)
  | Exists outer -> (
      let outer =
        {
          outer with
          bindings =
            List.map
              (fun b ->
                match b.source with
                | Nested c -> { b with source = Nested (merge_collection c) }
                | Base _ -> b)
              outer.bindings;
          body = merge_formula outer.body;
        }
      in
      let mergeable inner =
        outer.grouping = None && inner.grouping = None && outer.join = None
        && inner.join = None
        && List.for_all
             (fun v -> not (List.mem v (scope_vars outer)))
             (scope_vars inner)
      in
      match outer.body with
      | Exists inner when mergeable inner ->
          Exists
            {
              bindings = outer.bindings @ inner.bindings;
              grouping = None;
              join = None;
              body = inner.body;
            }
      | And fs -> (
          (* a single plain inner scope among other conjuncts also merges:
             the other conjuncts cannot reference the inner bindings *)
          match
            List.partition (function Exists _ -> true | _ -> false) fs
          with
          | [ Exists inner ], rest when mergeable inner ->
              Exists
                {
                  bindings = outer.bindings @ inner.bindings;
                  grouping = None;
                  join = None;
                  body = Canon.simplify_formula (And (rest @ [ inner.body ]));
                }
          | _ -> Exists outer)
      | _ -> Exists outer)

and merge_collection c = { c with body = merge_formula c.body }

let merge_nested_exists = function
  | Coll c -> Coll (merge_collection c)
  | Sentence f -> Sentence (merge_formula f)

(* ------------------------------------------------------------------ *)
(* Definition inlining                                                 *)
(* ------------------------------------------------------------------ *)

let inline_definitions (p : program) : program =
  (* classify inlinable definitions: non-recursive and safe *)
  let safeties = Analysis.program_safety p in
  (* a definition is recursive if its name is reachable from itself through
     definition references (covers mutual recursion) *)
  let names = List.map (fun d -> d.def_name) p.defs in
  let deps_of d =
    let acc = ref [] in
    let rec walk_f = function
      | True | Pred _ -> ()
      | And fs | Or fs -> List.iter walk_f fs
      | Not f -> walk_f f
      | Exists s ->
          List.iter
            (fun b ->
              match b.source with
              | Base n -> if List.mem n names then acc := n :: !acc
              | Nested c -> walk_f c.body)
            s.bindings;
          walk_f s.body
    in
    walk_f d.def_body.body;
    !acc
  in
  let table = List.map (fun d -> (d.def_name, deps_of d)) p.defs in
  let is_recursive name =
    let seen = Hashtbl.create 8 in
    let rec go n =
      List.exists
        (fun m ->
          m = name
          || (not (Hashtbl.mem seen m))
             && (Hashtbl.add seen m ();
                 go m))
        (try List.assoc n table with Not_found -> [])
    in
    go name
  in
  let is_safe name =
    match List.assoc_opt name safeties with
    | Some Analysis.Safe -> true
    | _ -> false
  in
  let inlinable = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if (not (is_recursive d.def_name)) && is_safe d.def_name then
        Hashtbl.replace inlinable d.def_name d.def_body)
    p.defs;
  (* inline bottom-up: definitions may reference earlier definitions *)
  let rec rewrite_formula f =
    match f with
    | True | Pred _ -> f
    | And fs -> And (List.map rewrite_formula fs)
    | Or fs -> Or (List.map rewrite_formula fs)
    | Not g -> Not (rewrite_formula g)
    | Exists s ->
        Exists
          {
            s with
            bindings =
              List.map
                (fun b ->
                  match b.source with
                  | Base n -> (
                      match Hashtbl.find_opt inlinable n with
                      | Some c ->
                          { b with source = Nested (rewrite_collection c) }
                      | None -> b)
                  | Nested c -> { b with source = Nested (rewrite_collection c) })
                s.bindings;
            body = rewrite_formula s.body;
          }
  and rewrite_collection c = { c with body = rewrite_formula c.body } in
  let main =
    match p.main with
    | Coll c -> Coll (rewrite_collection c)
    | Sentence f -> Sentence (rewrite_formula f)
  in
  let defs =
    List.filter (fun d -> not (Hashtbl.mem inlinable d.def_name)) p.defs
  in
  { defs; main }

(* ------------------------------------------------------------------ *)
(* DISTINCT encoding                                                   *)
(* ------------------------------------------------------------------ *)

let dedup_wrap ~fresh (c : collection) : collection =
  let var = fresh "x" in
  let head = fresh c.head.head_name in
  let attrs = c.head.head_attrs in
  {
    head = { head_name = head; head_attrs = attrs };
    body =
      Exists
        {
          bindings = [ { var; source = Nested c } ];
          grouping = Some (List.map (fun a -> (var, a)) attrs);
          join = None;
          body =
            And
              (List.map
                 (fun a -> Pred (Cmp (Eq, Attr (head, a), Attr (var, a))))
                 attrs);
        };
  }
