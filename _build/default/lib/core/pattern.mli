(** Relational-pattern signatures.

    The paper (Sections 1, 2.5) argues for a vocabulary in which the
    {e relational pattern} of a query — how it composes its inputs — can be
    compared across languages: how many times each base relation is
    referenced, how scopes nest, whether aggregation follows the
    "from the inside out" (FIO) or "from the outside in" (FOI) pattern, and
    so on. This module extracts such signatures from ARC queries.

    The FIO/FOI distinction is operationalized by correlation: a grouping
    scope computed inside a nested collection that {e references range
    variables of an enclosing scope} is FOI (the grouping context is fixed
    outside and passed in, as in Klug, Hella et al., and Soufflé, Fig 5);
    any other grouping scope is FIO (the grouped attributes flow from the
    inside out, as in SQL's GROUP BY and extended RA, Fig 4). *)

open Ast

type agg_style = FIO | FOI

type t = {
  rel_refs : (rel_name * int) list;
      (** How many times each base/defined/external relation is referenced,
          sorted by name. Distinguishes e.g. the Hella pattern (Fig 7:
          R×3, S×3) from ARC's single-scope pattern (Fig 6: R×1, S×1). *)
  n_scopes : int;
  n_grouping_scopes : int;
  n_nested_collections : int;
  n_negations : int;
  n_disjuncts : int;
  max_scope_depth : int;
  n_assignments : int;
  n_comparisons : int;
  n_aggregations : int;
  agg_styles : agg_style list;  (** One entry per grouping scope, preorder. *)
  has_outer_join : bool;
  skeleton : string;  (** {!Canon.skeleton} of the query. *)
}

val of_query : query -> t
val of_collection : collection -> t

val equal : t -> t -> bool
(** Full signature equality (includes the skeleton): pattern-identical. *)

val same_shape : t -> t -> bool
(** Equality of all numeric/structural components, ignoring the skeleton:
    "similar pattern" at the level the paper uses to contrast Figs 6/7/8. *)

val agg_style_to_string : agg_style -> string
val to_string : t -> string
