(** Pattern-level rewrites of ARC queries.

    The paper discusses several rewrites whose validity depends on
    conventions: unnesting is sound only under set semantics (Section 2.7),
    while connective normalizations are sound everywhere. Each rewrite here
    is a pure AST transformation; the test suite checks the claimed
    equivalences (and the claimed {e in}equivalences under bag semantics)
    with randomized databases. *)

open Ast

val push_negation : formula -> formula
(** De Morgan + double-negation normalization: [¬¬φ → φ],
    [¬(φ ∨ ψ) → ¬φ ∧ ¬ψ], [¬(φ ∧ ψ) → ¬φ ∨ ¬ψ]. Convention-independent
    under two-valued {e and} three-valued logic (Kleene De Morgan). *)

val merge_nested_exists : query -> query
(** Unnesting (Section 2.7): a scope whose body is directly a plain inner
    existential scope is merged with it —
    [∃r ∈ R[∃s ∈ S[φ]]  →  ∃r ∈ R, s ∈ S[φ]] — provided neither scope has a
    grouping operator or a join annotation and binding names do not clash.
    Sound under set semantics; changes multiplicities under bag semantics
    (exactly the paper's example). *)

val inline_definitions : program -> program
(** Replaces bindings to {e non-recursive, safe} definitions by nested
    collections, eliminating those definitions (a view-unfolding rewrite).
    Recursive or abstract definitions are kept. Sound under set semantics
    (intensional relations are sets: the fixpoint deduplicates). *)

val dedup_wrap : fresh:(string -> string) -> collection -> collection
(** The Section 2.7 DISTINCT encoding: wraps a collection in a grouping on
    all of its head attributes. [fresh] supplies new head/variable names. *)
