open Ast

(* ------------------------------------------------------------------ *)
(* Connective simplification                                           *)
(* ------------------------------------------------------------------ *)

let rec simplify_formula f =
  match f with
  | True | Pred _ -> f
  | Not g -> (
      match simplify_formula g with Not h -> h | g' -> Not g')
  | And fs -> (
      let fs' =
        List.concat_map
          (fun g ->
            match simplify_formula g with
            | True -> []
            | And hs -> hs
            | h -> [ h ])
          fs
      in
      match fs' with [] -> True | [ g ] -> g | _ -> And fs')
  | Or fs -> (
      let fs' =
        List.concat_map
          (fun g -> match simplify_formula g with Or hs -> hs | h -> [ h ])
          fs
      in
      match fs' with [ g ] -> g | _ -> Or fs')
  | Exists s -> Exists { s with body = simplify_formula s.body }

(* ------------------------------------------------------------------ *)
(* Renaming                                                            *)
(* ------------------------------------------------------------------ *)

type renamer = {
  mutable next_var : int;
  mutable next_head : int;
}

let fresh_var r =
  r.next_var <- r.next_var + 1;
  Printf.sprintf "v%d" r.next_var

let fresh_head r =
  r.next_head <- r.next_head + 1;
  Printf.sprintf "q%d" r.next_head

(* [map] maps old variable/head names to new ones; scoping is handled by
   extending the association list, never mutating it. *)
let rec rename_term map = function
  | Const c -> Const c
  | Attr (v, a) ->
      Attr ((match List.assoc_opt v map with Some v' -> v' | None -> v), a)
  | Scalar (op, ts) -> Scalar (op, List.map (rename_term map) ts)
  | Agg (k, t) -> Agg (k, rename_term map t)

let rename_pred map = function
  | Cmp (op, l, r) -> Cmp (op, rename_term map l, rename_term map r)
  | Is_null t -> Is_null (rename_term map t)
  | Not_null t -> Not_null (rename_term map t)
  | Like (t, p) -> Like (rename_term map t, p)

let rec rename_join map = function
  | J_var v ->
      J_var (match List.assoc_opt v map with Some v' -> v' | None -> v)
  | J_lit c -> J_lit c
  | J_inner l -> J_inner (List.map (rename_join map) l)
  | J_left (a, b) -> J_left (rename_join map a, rename_join map b)
  | J_full (a, b) -> J_full (rename_join map a, rename_join map b)

let rec rename_formula r map = function
  | True -> True
  | Pred p -> Pred (rename_pred map p)
  | And fs -> And (List.map (rename_formula r map) fs)
  | Or fs -> Or (List.map (rename_formula r map) fs)
  | Not f -> Not (rename_formula r map f)
  | Exists s ->
      let map', bindings =
        List.fold_left
          (fun (m, bs) b ->
            let v' = fresh_var r in
            let source =
              match b.source with
              | Base n -> Base n
              | Nested c -> Nested (rename_collection r m c)
            in
            ((b.var, v') :: m, bs @ [ { var = v'; source } ]))
          (map, []) s.bindings
      in
      Exists
        {
          bindings;
          grouping =
            Option.map
              (List.map (fun (v, a) ->
                   ((match List.assoc_opt v map' with Some v' -> v' | None -> v), a)))
              s.grouping;
          join = Option.map (rename_join map') s.join;
          body = rename_formula r map' s.body;
        }

and rename_collection r map c =
  let h' = fresh_head r in
  let map' = (c.head.head_name, h') :: map in
  {
    head = { head_name = h'; head_attrs = c.head.head_attrs };
    body = rename_formula r map' c.body;
  }

(* ------------------------------------------------------------------ *)
(* Orientation and sorting                                             *)
(* ------------------------------------------------------------------ *)

let rec term_key = function
  | Const c -> "c:" ^ Arc_value.Value.to_string c
  | Attr (v, a) -> "a:" ^ v ^ "." ^ a
  | Scalar (op, ts) ->
      "s:" ^ Pp.scalar_op_symbol op ^ "("
      ^ String.concat "," (List.map term_key ts)
      ^ ")"
  | Agg (k, t) ->
      "g:" ^ Arc_value.Aggregate.kind_to_string k ^ "(" ^ term_key t ^ ")"

let orient_pred p =
  match p with
  | Cmp (Eq, l, r) | Cmp (Neq, l, r) ->
      let op = match p with Cmp (o, _, _) -> o | _ -> assert false in
      if String.compare (term_key l) (term_key r) <= 0 then Cmp (op, l, r)
      else Cmp (op, r, l)
  | Cmp (op, l, r) ->
      (* prefer the structurally smaller term on the left for <,>,<=,>= only
         when the left side is a constant (human-reading orientation) *)
      (match l with Const _ -> Cmp (cmp_op_flip op, r, l) | _ -> Cmp (op, l, r))
  | p -> p

let rec formula_key = function
  | True -> "T"
  | Pred p -> "P:" ^ Pp.pred p
  | And fs -> "A(" ^ String.concat ";" (List.map formula_key fs) ^ ")"
  | Or fs -> "O(" ^ String.concat ";" (List.map formula_key fs) ^ ")"
  | Not f -> "N(" ^ formula_key f ^ ")"
  | Exists s ->
      "E("
      ^ String.concat ","
          (List.map
             (fun b ->
               match b.source with
               | Base n -> b.var ^ ":" ^ n
               | Nested c -> b.var ^ ":{" ^ coll_key c ^ "}")
             s.bindings)
      ^ (match s.grouping with
        | None -> ""
        | Some g -> "|" ^ Pp.grouping g)
      ^ (match s.join with None -> "" | Some j -> "|" ^ Pp.join_tree j)
      ^ ")[" ^ formula_key s.body ^ "]"

and coll_key c = Pp.head c.head ^ "|" ^ formula_key c.body

let rec sort_formula f =
  match f with
  | True -> True
  | Pred p -> Pred (orient_pred p)
  | And fs ->
      let fs' = List.map sort_formula fs in
      And (List.sort (fun a b -> compare (formula_key a) (formula_key b)) fs')
  | Or fs ->
      let fs' = List.map sort_formula fs in
      Or (List.sort (fun a b -> compare (formula_key a) (formula_key b)) fs')
  | Not f -> Not (sort_formula f)
  | Exists s ->
      Exists
        {
          s with
          bindings =
            List.map
              (fun b ->
                match b.source with
                | Base _ -> b
                | Nested c -> { b with source = Nested (sort_collection c) })
              s.bindings;
          body = sort_formula s.body;
        }

and sort_collection c = { c with body = sort_formula c.body }

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let canonical_query q =
  let r = { next_var = 0; next_head = 0 } in
  match q with
  | Coll c ->
      let c = rename_collection r [] { c with body = simplify_formula c.body } in
      Coll (sort_collection c)
  | Sentence f ->
      Sentence (sort_formula (rename_formula r [] (simplify_formula f)))

let canonical_program p =
  {
    defs =
      List.map
        (fun d ->
          let r = { next_var = 0; next_head = 0 } in
          {
            d with
            def_body =
              sort_collection
                (rename_collection r []
                   { d.def_body with body = simplify_formula d.def_body.body });
          })
        p.defs;
    main = canonical_query p.main;
  }

(* Skeleton: positional head attributes, canonical var names. *)

let skeleton q =
  let q = canonical_query q in
  (* map head name -> attr -> positional name *)
  let head_maps = Hashtbl.create 8 in
  let register_head (h : head) =
    let tbl = Hashtbl.create 4 in
    List.iteri (fun i a -> Hashtbl.replace tbl a (Printf.sprintf "a%d" (i + 1))) h.head_attrs;
    Hashtbl.replace head_maps h.head_name tbl
  in
  let rec scan_formula = function
    | True | Pred _ -> ()
    | And fs | Or fs -> List.iter scan_formula fs
    | Not f -> scan_formula f
    | Exists s ->
        List.iter
          (fun b ->
            match b.source with Nested c -> scan_coll c | Base _ -> ())
          s.bindings;
        scan_formula s.body
  and scan_coll c =
    register_head c.head;
    scan_formula c.body
  in
  (match q with Coll c -> scan_coll c | Sentence f -> scan_formula f);
  let rename_attr v a =
    match Hashtbl.find_opt head_maps v with
    | Some tbl -> (
        match Hashtbl.find_opt tbl a with Some a' -> a' | None -> a)
    | None -> a
  in
  let rec sk_term = function
    | Const c -> Arc_value.Value.to_string c
    | Attr (v, a) -> v ^ "." ^ rename_attr v a
    | Scalar (op, ts) ->
        Pp.scalar_op_symbol op ^ "(" ^ String.concat "," (List.map sk_term ts) ^ ")"
    | Agg (k, t) ->
        Arc_value.Aggregate.kind_to_string k ^ "(" ^ sk_term t ^ ")"
  in
  let sk_pred = function
    | Cmp (op, l, r) -> sk_term l ^ cmp_op_to_string op ^ sk_term r
    | Is_null t -> sk_term t ^ " null"
    | Not_null t -> sk_term t ^ " !null"
    | Like (t, p) -> sk_term t ^ " like " ^ p
  in
  let rec sk_formula = function
    | True -> "T"
    | Pred p -> sk_pred p
    | And fs -> "and(" ^ String.concat ";" (List.map sk_formula fs) ^ ")"
    | Or fs -> "or(" ^ String.concat ";" (List.map sk_formula fs) ^ ")"
    | Not f -> "not(" ^ sk_formula f ^ ")"
    | Exists s ->
        "exists("
        ^ String.concat ","
            (List.map
               (fun b ->
                 match b.source with
                 | Base n -> b.var ^ "\xe2\x88\x88" ^ n
                 | Nested c -> b.var ^ "\xe2\x88\x88" ^ sk_coll c)
               s.bindings)
        ^ (match s.grouping with
          | None -> ""
          | Some [] -> ";\xce\xb3\xe2\x88\x85"
          | Some keys ->
              ";\xce\xb3{"
              ^ String.concat "," (List.map (fun (v, a) -> v ^ "." ^ a) keys)
              ^ "}")
        ^ (match s.join with None -> "" | Some j -> ";" ^ Pp.join_tree j)
        ^ ")[" ^ sk_formula s.body ^ "]"
  and sk_coll c =
    "{" ^ c.head.head_name ^ "/"
    ^ string_of_int (List.length c.head.head_attrs)
    ^ "|" ^ sk_formula c.body ^ "}"
  in
  match q with Coll c -> sk_coll c | Sentence f -> sk_formula f
