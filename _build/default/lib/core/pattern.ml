open Ast

type agg_style = FIO | FOI

type t = {
  rel_refs : (rel_name * int) list;
  n_scopes : int;
  n_grouping_scopes : int;
  n_nested_collections : int;
  n_negations : int;
  n_disjuncts : int;
  max_scope_depth : int;
  n_assignments : int;
  n_comparisons : int;
  n_aggregations : int;
  agg_styles : agg_style list;
  has_outer_join : bool;
  skeleton : string;
}

type acc = {
  mutable rels : (rel_name * int) list;
  mutable scopes : int;
  mutable grouping_scopes : int;
  mutable nested : int;
  mutable negations : int;
  mutable disjuncts : int;
  mutable depth : int;
  mutable assignments : int;
  mutable comparisons : int;
  mutable aggregations : int;
  mutable styles : agg_style list;
  mutable outer_join : bool;
}

let bump acc name =
  acc.rels <-
    (match List.assoc_opt name acc.rels with
    | Some n -> (name, n + 1) :: List.remove_assoc name acc.rels
    | None -> (name, 1) :: acc.rels)

let rec has_outer = function
  | J_var _ | J_lit _ -> false
  | J_inner l -> List.exists has_outer l
  | J_left _ | J_full _ -> true

(* Does the formula reference any variable from [outer] (variables bound in
   scopes enclosing the current collection)? *)
let correlated_with outer c =
  let hit = ref false in
  let rec walk_f bound = function
    | True -> ()
    | Pred p ->
        List.iter
          (fun t ->
            List.iter
              (fun (v, _) ->
                if List.mem v outer && not (List.mem v bound) then hit := true)
              (term_vars t))
          (pred_terms p)
    | And fs | Or fs -> List.iter (walk_f bound) fs
    | Not f -> walk_f bound f
    | Exists s ->
        let bound' =
          List.fold_left
            (fun b bd ->
              (match bd.source with
              | Nested c' -> walk_f (c'.head.head_name :: b) c'.body
              | Base _ -> ());
              bd.var :: b)
            bound s.bindings
        in
        walk_f bound' s.body
  in
  walk_f [ c.head.head_name ] c.body;
  !hit

let of_query q =
  let acc =
    {
      rels = [];
      scopes = 0;
      grouping_scopes = 0;
      nested = 0;
      negations = 0;
      disjuncts = 0;
      depth = 0;
      assignments = 0;
      comparisons = 0;
      aggregations = 0;
      styles = [];
      outer_join = false;
    }
  in
  let rec walk_formula ~heads ~outer ~depth f =
    match f with
    | True -> ()
    | Pred p ->
        let role = Analysis.classify ~heads p in
        if role.Analysis.is_aggregation then
          acc.aggregations <- acc.aggregations + 1
        else if role.Analysis.is_assignment then
          acc.assignments <- acc.assignments + 1
        else acc.comparisons <- acc.comparisons + 1
    | And fs -> List.iter (walk_formula ~heads ~outer ~depth) fs
    | Or fs ->
        acc.disjuncts <- acc.disjuncts + List.length fs;
        List.iter (walk_formula ~heads ~outer ~depth) fs
    | Not f ->
        acc.negations <- acc.negations + 1;
        walk_formula ~heads ~outer ~depth f
    | Exists s ->
        acc.scopes <- acc.scopes + 1;
        acc.depth <- max acc.depth (depth + 1);
        (match s.join with
        | Some j when has_outer j -> acc.outer_join <- true
        | _ -> ());
        (match s.grouping with
        | Some keys ->
            acc.grouping_scopes <- acc.grouping_scopes + 1;
            (* FOI: γ∅-or-keyed grouping inside a correlated nested
               collection is classified by the caller via [in_correlated];
               here we use the flag stored in [outer] marker below. *)
            ignore keys
        | None -> ());
        let inner_vars = List.map (fun b -> b.var) s.bindings in
        List.iter
          (fun b ->
            match b.source with
            | Base n -> bump acc n
            | Nested c ->
                acc.nested <- acc.nested + 1;
                let corr = correlated_with (outer @ inner_vars) c in
                walk_collection ~outer:(outer @ inner_vars) ~depth:(depth + 1)
                  ~corr c)
          s.bindings;
        (match s.grouping with
        | Some _ -> acc.styles <- acc.styles @ [ FIO ]
        | None -> ());
        walk_formula ~heads ~outer:(outer @ inner_vars) ~depth:(depth + 1)
          s.body
  and walk_collection ~outer ~depth ~corr c =
    (* grouping scopes directly inside a correlated nested collection are
       FOI; mark by rewriting the styles appended during the walk *)
    let before = List.length acc.styles in
    walk_formula ~heads:[ c.head.head_name ] ~outer ~depth c.body;
    if corr then
      acc.styles <-
        List.mapi
          (fun i st -> if i >= before then FOI else st)
          acc.styles
  in
  (match q with
  | Coll c -> walk_collection ~outer:[] ~depth:0 ~corr:false c
  | Sentence f -> walk_formula ~heads:[] ~outer:[] ~depth:0 f);
  {
    rel_refs = List.sort compare acc.rels;
    n_scopes = acc.scopes;
    n_grouping_scopes = acc.grouping_scopes;
    n_nested_collections = acc.nested;
    n_negations = acc.negations;
    n_disjuncts = acc.disjuncts;
    max_scope_depth = acc.depth;
    n_assignments = acc.assignments;
    n_comparisons = acc.comparisons;
    n_aggregations = acc.aggregations;
    agg_styles = acc.styles;
    has_outer_join = acc.outer_join;
    skeleton = Canon.skeleton q;
  }

let of_collection c = of_query (Coll c)

let equal a b = a = b

let same_shape a b = { a with skeleton = "" } = { b with skeleton = "" }

let agg_style_to_string = function FIO -> "FIO" | FOI -> "FOI"

let to_string t =
  Printf.sprintf
    "refs=[%s] scopes=%d grouping=%d nested=%d neg=%d disj=%d depth=%d \
     assign=%d cmp=%d agg=%d styles=[%s]%s"
    (String.concat "; "
       (List.map (fun (n, c) -> Printf.sprintf "%s\xc3\x97%d" n c) t.rel_refs))
    t.n_scopes t.n_grouping_scopes t.n_nested_collections t.n_negations
    t.n_disjuncts t.max_scope_depth t.n_assignments t.n_comparisons
    t.n_aggregations
    (String.concat "," (List.map agg_style_to_string t.agg_styles))
    (if t.has_outer_join then " outer-join" else "")
