(** Canonical forms of ARC queries.

    Semantic comparison of queries must not depend on "the idiosyncrasies of
    any particular query language" (paper, Section 1) — nor on incidental
    choices {e within} ARC: variable names, conjunct order, orientation of
    equality predicates, or redundant [And]/[Or]/[Not] nesting. This module
    normalizes those choices. Two queries with the same relational pattern
    and the same structure receive equal canonical forms; [Arc_intent] builds
    its similarity metrics on top. *)

open Ast

val simplify_formula : formula -> formula
(** Flattens nested [And]/[Or], removes [True] conjuncts, collapses
    single-element connectives and double negation. Pattern-preserving. *)

val canonical_query : query -> query
(** Renames range variables to [v1, v2, …] (in deterministic traversal
    order), head names to [q1, q2, …], orients comparison predicates
    ([5 < r.A] becomes [r.A > 5]; equalities ordered lexicographically),
    sorts conjuncts and disjuncts structurally, and simplifies connectives.
    Evaluation-equivalent by construction (conjunct order is irrelevant in
    ARC: "the order of shown predicates does not matter", Section 2.3). *)

val canonical_program : program -> program

val skeleton : query -> string
(** A compact structural fingerprint of the canonical form with variable
    {e and} head-attribute names erased (relation names kept): the
    "relational pattern" rendered as a string. Equal skeletons mean
    pattern-identical queries. *)
