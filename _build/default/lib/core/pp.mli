(** Shared atom-level rendering of ARC fragments (terms, predicates, join
    annotations, grouping operators). The three modality libraries build on
    these so that the same atom always prints identically across
    comprehension text, ALT dumps, and higraph labels. *)

open Ast

val scalar_op_symbol : scalar_op -> string
val term : term -> string
val pred : pred -> string
val join_tree : join_tree -> string
val grouping : grouping -> string
(** [grouping []] renders as ["γ_∅"]. *)

val head : head -> string
(** [Q(A,B)]. *)
