type mode = { m_inputs : string list; m_outputs : string list }

type decl = { ext_name : string; ext_attrs : string list; ext_modes : mode list }

let ternary_modes a b c =
  [
    { m_inputs = [ a; b ]; m_outputs = [ c ] };
    { m_inputs = [ a; c ]; m_outputs = [ b ] };
    { m_inputs = [ b; c ]; m_outputs = [ a ] };
    { m_inputs = [ a; b; c ]; m_outputs = [] };
  ]

let arithmetic name =
  {
    ext_name = name;
    ext_attrs = [ "left"; "right"; "out" ];
    ext_modes = ternary_modes "left" "right" "out";
  }

let product_style name =
  {
    ext_name = name;
    ext_attrs = [ "$1"; "$2"; "out" ];
    ext_modes = ternary_modes "$1" "$2" "out";
  }

let comparison name =
  {
    ext_name = name;
    ext_attrs = [ "left"; "right" ];
    ext_modes = [ { m_inputs = [ "left"; "right" ]; m_outputs = [] } ];
  }

let standard =
  [
    arithmetic "Minus";
    arithmetic "Add";
    arithmetic "-";
    arithmetic "+";
    product_style "*";
    comparison "Bigger";
    comparison ">";
  ]

let find decls name = List.find_opt (fun d -> d.ext_name = name) decls
