open Ast

type features = {
  uses_aggregation : bool;
  uses_grouping : bool;
  uses_negation : bool;
  uses_disjunction : bool;
  uses_join_annotations : bool;
  uses_nested_collections : bool;
  uses_arithmetic : bool;
  uses_order_comparisons : bool;
  uses_null_predicates : bool;
  uses_like : bool;
}

let empty =
  {
    uses_aggregation = false;
    uses_grouping = false;
    uses_negation = false;
    uses_disjunction = false;
    uses_join_annotations = false;
    uses_nested_collections = false;
    uses_arithmetic = false;
    uses_order_comparisons = false;
    uses_null_predicates = false;
    uses_like = false;
  }

let merge a b =
  {
    uses_aggregation = a.uses_aggregation || b.uses_aggregation;
    uses_grouping = a.uses_grouping || b.uses_grouping;
    uses_negation = a.uses_negation || b.uses_negation;
    uses_disjunction = a.uses_disjunction || b.uses_disjunction;
    uses_join_annotations = a.uses_join_annotations || b.uses_join_annotations;
    uses_nested_collections =
      a.uses_nested_collections || b.uses_nested_collections;
    uses_arithmetic = a.uses_arithmetic || b.uses_arithmetic;
    uses_order_comparisons = a.uses_order_comparisons || b.uses_order_comparisons;
    uses_null_predicates = a.uses_null_predicates || b.uses_null_predicates;
    uses_like = a.uses_like || b.uses_like;
  }

let rec term_features = function
  | Const _ | Attr _ -> empty
  | Scalar (_, ts) ->
      List.fold_left merge { empty with uses_arithmetic = true }
        (List.map term_features ts)
  | Agg (_, t) -> merge { empty with uses_aggregation = true } (term_features t)

let pred_features = function
  | Cmp (op, l, r) ->
      let base =
        match op with
        | Lt | Leq | Gt | Geq -> { empty with uses_order_comparisons = true }
        | Eq | Neq -> empty
      in
      merge base (merge (term_features l) (term_features r))
  | Is_null t | Not_null t ->
      merge { empty with uses_null_predicates = true } (term_features t)
  | Like (t, _) -> merge { empty with uses_like = true } (term_features t)

let rec formula_features = function
  | True -> empty
  | Pred p -> pred_features p
  | And fs -> List.fold_left merge empty (List.map formula_features fs)
  | Or fs ->
      List.fold_left merge
        { empty with uses_disjunction = fs <> [] && List.length fs > 1 }
        (List.map formula_features fs)
  | Not f -> merge { empty with uses_negation = true } (formula_features f)
  | Exists s ->
      let base =
        {
          empty with
          uses_grouping = s.grouping <> None;
          uses_join_annotations = s.join <> None;
        }
      in
      let bindings =
        List.fold_left
          (fun acc b ->
            match b.source with
            | Base _ -> acc
            | Nested c ->
                merge acc
                  (merge
                     { empty with uses_nested_collections = true }
                     (formula_features c.body)))
          base s.bindings
      in
      merge bindings (formula_features s.body)

let features = function
  | Coll c -> formula_features c.body
  | Sentence f -> formula_features f

let features_program (p : program) =
  List.fold_left merge
    (features p.main)
    (List.map (fun d -> formula_features d.def_body.body) p.defs)

let is_trc q =
  let f = features q in
  (not f.uses_aggregation) && (not f.uses_grouping)
  && (not f.uses_join_annotations)
  && (not f.uses_nested_collections)
  && not f.uses_arithmetic

let is_conjunctive q =
  let f = features q in
  is_trc q && (not f.uses_negation) && (not f.uses_disjunction)
  && not f.uses_order_comparisons

let is_relationally_complete_fragment = is_trc

let name q =
  if is_conjunctive q then "conjunctive"
  else if is_trc q then "TRC (relationally complete)"
  else
    let f = features q in
    let exts =
      List.filter_map
        (fun (used, n) -> if used then Some n else None)
        [
          (f.uses_aggregation, "aggregation");
          (f.uses_grouping && not f.uses_aggregation, "grouping");
          (f.uses_join_annotations, "join annotations");
          (f.uses_nested_collections, "nested collections");
          (f.uses_arithmetic, "arithmetic");
        ]
    in
    if exts = [] then "TRC (relationally complete)"
    else "ARC + " ^ String.concat " + " exts

let uses_recursion (p : program) =
  (* transitive self-reference through definition names *)
  let names = List.map (fun d -> d.def_name) p.defs in
  let deps_of d =
    let acc = ref [] in
    let rec walk_f = function
      | True | Pred _ -> ()
      | And fs | Or fs -> List.iter walk_f fs
      | Not f -> walk_f f
      | Exists s ->
          List.iter
            (fun b ->
              match b.source with
              | Base n -> if List.mem n names then acc := n :: !acc
              | Nested c -> walk_f c.body)
            s.bindings;
          walk_f s.body
    in
    walk_f d.def_body.body;
    !acc
  in
  let table = List.map (fun d -> (d.def_name, deps_of d)) p.defs in
  let reachable_from start =
    let seen = Hashtbl.create 8 in
    let rec go n =
      List.iter
        (fun m ->
          if not (Hashtbl.mem seen m) then (
            Hashtbl.add seen m ();
            go m))
        (try List.assoc n table with Not_found -> [])
    in
    go start;
    seen
  in
  List.exists (fun d -> Hashtbl.mem (reachable_from d.def_name) d.def_name) p.defs
