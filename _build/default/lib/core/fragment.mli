(** Language-fragment classification.

    The paper's comparisons live at the level of {e fragments}: TRC is the
    relationally complete first-order fragment (Section 2.1, Example 2);
    aggregation, grouping, join annotations, recursion, and arithmetic are
    ARC's strict extensions beyond it. This module names those fragments so
    claims like "ARC is a strict generalization of TRC" are checkable: every
    query in the TRC fragment is a valid ARC query, and the features record
    says exactly which extensions a query exercises. *)

open Ast

type features = {
  uses_aggregation : bool;
  uses_grouping : bool;
  uses_negation : bool;
  uses_disjunction : bool;
  uses_join_annotations : bool;  (** incl. outer joins, Section 2.11 *)
  uses_nested_collections : bool;
  uses_arithmetic : bool;
  uses_order_comparisons : bool;  (** [<], [≤], [>], [≥] *)
  uses_null_predicates : bool;
  uses_like : bool;
}

val features : query -> features
val features_program : program -> features

val is_trc : query -> bool
(** The membership-style TRC fragment of Section 2.1: quantifier scopes,
    equality/comparison predicates, negation, disjunction — but no grouping,
    aggregation, join annotations, nested collections, or arithmetic.
    (Nested collections are excluded because TRC ranges only over base
    relations.) *)

val is_conjunctive : query -> bool
(** Conjunctive fragment: a single scope chain with equality predicates
    only — no negation, disjunction, grouping, or order comparisons. *)

val is_relationally_complete_fragment : query -> bool
(** {!is_trc} — the first-order fragment the paper calls "relationally
    complete" (Example 2). *)

val name : query -> string
(** A human-readable fragment name:
    ["conjunctive"], ["TRC (relationally complete)"], or
    ["ARC + aggregation + outer joins"]-style listing of extensions. *)

val uses_recursion : program -> bool
(** Some definition (transitively) refers to itself. *)
