lib/core/analysis.mli: Ast External
