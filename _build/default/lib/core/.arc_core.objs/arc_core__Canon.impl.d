lib/core/canon.ml: Arc_value Ast Hashtbl List Option Pp Printf String
