lib/core/external.ml: List
