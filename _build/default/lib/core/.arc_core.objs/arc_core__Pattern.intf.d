lib/core/pattern.mli: Ast
