lib/core/build.mli: Arc_value Ast
