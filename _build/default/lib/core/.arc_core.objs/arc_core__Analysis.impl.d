lib/core/analysis.ml: Ast External Hashtbl List Pp Printf Set
