lib/core/external.mli:
