lib/core/rewrite.ml: Analysis Ast Canon Hashtbl List
