lib/core/pp.mli: Ast
