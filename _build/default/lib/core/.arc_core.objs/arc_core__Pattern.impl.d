lib/core/pattern.ml: Analysis Ast Canon List Printf String
