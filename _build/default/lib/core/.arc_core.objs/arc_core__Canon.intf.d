lib/core/canon.mli: Ast
