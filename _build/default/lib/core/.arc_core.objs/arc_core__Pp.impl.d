lib/core/pp.ml: Arc_value Ast List Printf String
