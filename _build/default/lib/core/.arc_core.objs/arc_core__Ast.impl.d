lib/core/ast.ml: Arc_value List
