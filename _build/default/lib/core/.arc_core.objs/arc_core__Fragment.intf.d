lib/core/fragment.mli: Ast
