lib/core/ast.mli: Arc_value
