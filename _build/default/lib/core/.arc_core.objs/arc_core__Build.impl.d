lib/core/build.ml: Arc_value Ast
