lib/core/fragment.ml: Ast Hashtbl List String
