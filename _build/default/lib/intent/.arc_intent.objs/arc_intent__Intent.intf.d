lib/intent/intent.mli: Arc_core Arc_relation Arc_value
