lib/intent/intent.ml: Arc_core Arc_engine Arc_relation Arc_sql Arc_value Array Buffer Char Float Hashtbl List Option Printf Random String
