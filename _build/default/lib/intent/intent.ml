open Arc_core.Ast
module Canon = Arc_core.Canon
module Pattern = Arc_core.Pattern
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

(* ------------------------------------------------------------------ *)
(* Pattern equality and similarity                                     *)
(* ------------------------------------------------------------------ *)

let pattern_equal q1 q2 =
  equal_query (Canon.canonical_query q1) (Canon.canonical_query q2)

(* bag of root-to-node label paths of the canonical ALT-like structure *)
let path_features q =
  let q = Canon.canonical_query q in
  let feats = ref [] in
  let push path = feats := path :: !feats in
  let rec walk_term path = function
    | Const c -> push (path ^ "/c:" ^ V.to_string c)
    | Attr (v, a) -> push (path ^ "/a:" ^ v ^ "." ^ a)
    | Scalar (op, ts) ->
        let p = path ^ "/s:" ^ Arc_core.Pp.scalar_op_symbol op in
        push p;
        List.iter (walk_term p) ts
    | Agg (k, t) ->
        let p = path ^ "/g:" ^ Arc_value.Aggregate.kind_to_string k in
        push p;
        walk_term p t
  in
  let walk_pred path p =
    let tag =
      match p with
      | Cmp (op, _, _) -> "cmp" ^ cmp_op_to_string op
      | Is_null _ -> "isnull"
      | Not_null _ -> "notnull"
      | Like (_, pat) -> "like:" ^ pat
    in
    let p' = path ^ "/p:" ^ tag in
    push p';
    List.iter (walk_term p') (pred_terms p)
  in
  let rec walk_formula path = function
    | True -> push (path ^ "/T")
    | Pred p -> walk_pred path p
    | And fs ->
        List.iter (walk_formula (path ^ "/and")) fs
    | Or fs ->
        push (path ^ "/or");
        List.iter (walk_formula (path ^ "/or")) fs
    | Not f ->
        push (path ^ "/not");
        walk_formula (path ^ "/not") f
    | Exists s ->
        let p = path ^ "/exists" in
        push p;
        List.iter
          (fun b ->
            match b.source with
            | Base n -> push (p ^ "/bind:" ^ n)
            | Nested c ->
                push (p ^ "/bind:<nested>");
                walk_coll (p ^ "/nested") c)
          s.bindings;
        (match s.grouping with
        | Some [] -> push (p ^ "/gamma0")
        | Some keys -> push (p ^ Printf.sprintf "/gamma%d" (List.length keys))
        | None -> ());
        (match s.join with
        | Some jt -> push (p ^ "/join:" ^ Arc_core.Pp.join_tree jt)
        | None -> ());
        walk_formula p s.body
  and walk_coll path c =
    push (path ^ Printf.sprintf "/head%d" (List.length c.head.head_attrs));
    walk_formula path c.body
  in
  (match q with
  | Coll c -> walk_coll "" c
  | Sentence f -> walk_formula "/sentence" f);
  !feats

let bag_jaccard a b =
  let count l =
    let h = Hashtbl.create 64 in
    List.iter
      (fun x -> Hashtbl.replace h x (1 + Option.value ~default:0 (Hashtbl.find_opt h x)))
      l;
    h
  in
  let ca = count a and cb = count b in
  let keys = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) ca;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) cb;
  let inter = ref 0 and union = ref 0 in
  Hashtbl.iter
    (fun k () ->
      let na = Option.value ~default:0 (Hashtbl.find_opt ca k) in
      let nb = Option.value ~default:0 (Hashtbl.find_opt cb k) in
      inter := !inter + min na nb;
      union := !union + max na nb)
    keys;
  if !union = 0 then 1.0 else float_of_int !inter /. float_of_int !union

let signature_agreement (p1 : Pattern.t) (p2 : Pattern.t) =
  let num f1 f2 =
    let a = float_of_int f1 and b = float_of_int f2 in
    if a = 0. && b = 0. then 1.0 else 1.0 -. (Float.abs (a -. b) /. Float.max a b)
  in
  let components =
    [
      bag_jaccard
        (List.concat_map (fun (n, c) -> List.init c (fun _ -> n)) p1.Pattern.rel_refs)
        (List.concat_map (fun (n, c) -> List.init c (fun _ -> n)) p2.Pattern.rel_refs);
      num p1.Pattern.n_scopes p2.Pattern.n_scopes;
      num p1.Pattern.n_grouping_scopes p2.Pattern.n_grouping_scopes;
      num p1.Pattern.n_negations p2.Pattern.n_negations;
      num p1.Pattern.n_assignments p2.Pattern.n_assignments;
      num p1.Pattern.n_comparisons p2.Pattern.n_comparisons;
      num p1.Pattern.n_aggregations p2.Pattern.n_aggregations;
      (if p1.Pattern.agg_styles = p2.Pattern.agg_styles then 1.0 else 0.0);
    ]
  in
  List.fold_left ( +. ) 0. components /. float_of_int (List.length components)

let similarity q1 q2 =
  if pattern_equal q1 q2 then 1.0
  else
    let paths = bag_jaccard (path_features q1) (path_features q2) in
    let sigs = signature_agreement (Pattern.of_query q1) (Pattern.of_query q2) in
    (0.6 *. paths) +. (0.4 *. sigs)

(* ------------------------------------------------------------------ *)
(* Surface similarity                                                  *)
(* ------------------------------------------------------------------ *)

let normalize_string s =
  let buf = Buffer.create (String.length s) in
  let last_space = ref true in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' ->
          if not !last_space then (
            Buffer.add_char buf ' ';
            last_space := true)
      | c ->
          Buffer.add_char buf (Char.lowercase_ascii c);
          last_space := false)
    s;
  String.trim (Buffer.contents buf)

let levenshtein a b =
  let n = String.length a and m = String.length b in
  if n = 0 then m
  else if m = 0 then n
  else begin
    let prev = Array.init (m + 1) (fun j -> j) in
    let cur = Array.make (m + 1) 0 in
    for i = 1 to n do
      cur.(0) <- i;
      for j = 1 to m do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (m + 1)
    done;
    prev.(m)
  end

let string_similarity a b =
  let a = normalize_string a and b = normalize_string b in
  let d = levenshtein a b in
  let l = max (String.length a) (String.length b) in
  if l = 0 then 1.0 else 1.0 -. (float_of_int d /. float_of_int l)

(* ------------------------------------------------------------------ *)
(* Randomized equivalence                                              *)
(* ------------------------------------------------------------------ *)

type verdict = Equivalent | Counterexample of Database.t

let random_db rng ~schemas =
  Database.of_list
    (List.map
       (fun (name, attrs) ->
         let n_rows = Random.State.int rng 7 in
         let rows =
           List.init n_rows (fun _ ->
               List.map
                 (fun _ ->
                   (* small domain with occasional NULL *)
                   if Random.State.int rng 10 = 0 then V.Null
                   else V.Int (Random.State.int rng 5))
                 attrs)
         in
         (name, Relation.of_rows attrs rows))
       schemas)

let equivalence ?(conv = Conventions.sql_set) ?(trials = 50) ?(seed = 42)
    ~schemas q1 q2 =
  let rng = Random.State.make [| seed |] in
  let eval q db =
    try Some (Arc_engine.Eval.run_rows ~conv ~db (program q)) with _ -> None
  in
  let rec go i =
    if i >= trials then Equivalent
    else
      let db = random_db rng ~schemas in
      let r1 = eval q1 db and r2 = eval q2 db in
      let same =
        match (r1, r2) with
        | Some a, Some b -> (
            match conv.Conventions.collection with
            | Conventions.Set -> Relation.equal_set a b
            | Conventions.Bag ->
                Relation.equal_bag (Relation.sort a) (Relation.sort b))
        | None, None -> true
        | _ -> false
      in
      if same then go (i + 1) else Counterexample db
  in
  go 0

(* ------------------------------------------------------------------ *)
(* End-to-end NL2SQL validation report                                 *)
(* ------------------------------------------------------------------ *)

type report = {
  gold_sql : string;
  candidate_sql : string;
  parses : bool;
  validates : bool;
  exact_string_match : bool;
  surface_similarity : float;
  pattern_match : bool;
  intent_similarity : float;
  execution_equivalent : bool option;
}

let translate ~schemas sql =
  try
    let stmt = Arc_sql.Parse.statement_of_string sql in
    let prog = Arc_sql.To_arc.statement ~schemas stmt in
    Some prog
  with _ -> None

let compare_sql ?(trials = 30) ~schemas ~gold ~candidate () : report =
  let gold_prog = translate ~schemas gold in
  let cand_prog = translate ~schemas candidate in
  let parses = cand_prog <> None in
  let validates =
    match cand_prog with
    | Some p -> (
        let env = Arc_core.Analysis.env ~schemas () in
        match Arc_core.Analysis.validate ~env p with
        | Ok () -> true
        | Error _ -> false)
    | None -> false
  in
  let exact = normalize_string gold = normalize_string candidate in
  let surface = string_similarity gold candidate in
  let pattern_match, intent_sim =
    match (gold_prog, cand_prog) with
    | Some g, Some c ->
        (pattern_equal g.main c.main, similarity g.main c.main)
    | _ -> (false, 0.0)
  in
  let exec =
    match (gold_prog, cand_prog) with
    | Some g, Some c -> (
        match
          equivalence ~conv:Conventions.sql ~trials ~schemas g.main c.main
        with
        | Equivalent -> Some true
        | Counterexample _ -> Some false)
    | _ -> None
  in
  {
    gold_sql = gold;
    candidate_sql = candidate;
    parses;
    validates;
    exact_string_match = exact;
    surface_similarity = surface;
    pattern_match;
    intent_similarity = intent_sim;
    execution_equivalent = exec;
  }

let report_to_string r =
  String.concat "\n"
    [
      Printf.sprintf "gold:      %s" r.gold_sql;
      Printf.sprintf "candidate: %s" r.candidate_sql;
      Printf.sprintf "  parses: %b   validates: %b" r.parses r.validates;
      Printf.sprintf "  exact string match:   %b" r.exact_string_match;
      Printf.sprintf "  surface similarity:   %.2f" r.surface_similarity;
      Printf.sprintf "  pattern match:        %b" r.pattern_match;
      Printf.sprintf "  intent similarity:    %.2f" r.intent_similarity;
      Printf.sprintf "  execution equivalent: %s"
        (match r.execution_equivalent with
        | Some b -> string_of_bool b
        | None -> "n/a");
    ]
