(** Intent-based comparison of queries (paper, Sections 1 and 4).

    SQL's surface syntax is a poor proxy for intent: semantically equivalent
    queries can differ wildly as strings, while near-identical strings can
    mean different things. The paper argues NL2SQL evaluation should shift
    to "intent-based benchmarking" over a semantic representation; this
    module provides exactly that machinery over ARC:

    {ul
    {- {!pattern_equal}/{!similarity}: canonical-ALT structural comparison
       (variable names, conjunct order, and equality orientation are already
       factored out by {!Arc_core.Canon});}
    {- {!string_similarity}: normalized Levenshtein similarity, the surface
       baseline the paper criticizes;}
    {- {!equivalence}: randomized-database testing — the execution-match
       criterion, strengthened by many random instances;}
    {- {!compare_sql}: an end-to-end report for a gold/candidate SQL pair,
       the shape of evaluation the paper proposes for NL2SQL systems.}} *)

open Arc_core.Ast

val pattern_equal : query -> query -> bool
(** Equal canonical forms: same relational pattern, same constants. *)

val similarity : query -> query -> float
(** Structural similarity in [0, 1]: 1.0 for pattern-equal queries;
    otherwise a Jaccard similarity over bags of canonical-ALT path features
    combined with agreement of the {!Arc_core.Pattern.t} signatures. *)

val string_similarity : string -> string -> float
(** Normalized Levenshtein similarity of the raw strings (whitespace
    collapsed, case-insensitive): the surface-syntax baseline. *)

type verdict =
  | Equivalent  (** agreed on every random instance *)
  | Counterexample of Arc_relation.Database.t
      (** a database on which results differ *)

val equivalence :
  ?conv:Arc_value.Conventions.t ->
  ?trials:int ->
  ?seed:int ->
  schemas:(string * string list) list ->
  query ->
  query ->
  verdict
(** Randomized-database equivalence testing: evaluates both queries on
    [trials] (default 50) random instances of the given schemas (small
    integer domains to make collisions likely). A [Equivalent] verdict is
    evidence, not proof. *)

type report = {
  gold_sql : string;
  candidate_sql : string;
  parses : bool;
  validates : bool;  (** well-scoped after SQL→ARC translation *)
  exact_string_match : bool;
  surface_similarity : float;
  pattern_match : bool;
  intent_similarity : float;
  execution_equivalent : bool option;
      (** [None] when either side fails to parse/translate *)
}

val compare_sql :
  ?trials:int ->
  schemas:(string * string list) list ->
  gold:string ->
  candidate:string ->
  unit ->
  report
(** The full intent-based validation pipeline for one NL2SQL output. *)

val report_to_string : report -> string
