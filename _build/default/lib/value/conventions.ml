type collection_semantics = Set | Bag
type null_logic = Two_valued | Three_valued
type agg_empty = Agg_null | Agg_zero

type t = {
  collection : collection_semantics;
  null_logic : null_logic;
  agg_empty : agg_empty;
}

let sql = { collection = Bag; null_logic = Three_valued; agg_empty = Agg_null }
let sql_set = { sql with collection = Set }

let souffle =
  { collection = Set; null_logic = Two_valued; agg_empty = Agg_zero }

let classical =
  { collection = Set; null_logic = Two_valued; agg_empty = Agg_null }

let to_string c =
  Printf.sprintf "{%s, %s, %s}"
    (match c.collection with Set -> "set" | Bag -> "bag")
    (match c.null_logic with Two_valued -> "2VL" | Three_valued -> "3VL")
    (match c.agg_empty with Agg_null -> "agg∅=null" | Agg_zero -> "agg∅=0")

let pp fmt c = Format.pp_print_string fmt (to_string c)
