(** Three-valued logic (SQL's [true]/[false]/[unknown]).

    ARC treats the choice between two- and three-valued logic as a
    {e convention} (paper, Section 2.6/2.10): the same relational pattern can
    be interpreted under either. This module provides the Kleene connectives
    used by the engine when the [Three_valued] convention is active. *)

type t = True | False | Unknown

val of_bool : bool -> t

val to_bool : t -> bool
(** Collapses [Unknown] to [false], as SQL's WHERE clause does. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

val and_list : t list -> t
val or_list : t list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
