lib/value/value.ml: Float Format Hashtbl Printf Stdlib String
