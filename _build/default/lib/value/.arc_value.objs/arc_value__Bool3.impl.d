lib/value/bool3.ml: Format List
