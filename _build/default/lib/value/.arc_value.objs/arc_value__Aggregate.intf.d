lib/value/aggregate.mli: Conventions Value
