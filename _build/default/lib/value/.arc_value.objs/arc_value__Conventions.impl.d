lib/value/conventions.ml: Format Printf
