lib/value/bool3.mli: Format
