lib/value/aggregate.ml: Conventions Hashtbl List String Value
