lib/value/conventions.mli: Format
