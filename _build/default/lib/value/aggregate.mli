(** Aggregate functions (paper, Section 2.5).

    In ARC an aggregate conceptually has two inputs: the full join determined
    by the scope in which the aggregation predicate appears, and a column
    identifier. This module implements the per-group accumulation over the
    column's values. Deduplicating variants ([count_distinct], ...) realize
    the paper's "dedicated aggregate functions" alternative to projecting
    first.

    NULL handling follows SQL: NULL inputs are skipped; the value of an
    aggregate over an empty (or all-NULL, for non-count aggregates) input is
    governed by the {!Conventions.agg_empty} convention. *)

type kind =
  | Sum
  | Count
  | Avg
  | Min
  | Max
  | Count_distinct
  | Sum_distinct
  | Avg_distinct

val kind_of_string : string -> kind option
val kind_to_string : kind -> string
val all_kinds : kind list

val apply : Conventions.agg_empty -> kind -> Value.t list -> Value.t
(** [apply empty_conv kind values] computes the aggregate over the listed
    column values of one group. *)
