(** Language conventions (paper, Sections 2.6 and 2.7).

    A convention is an orthogonal, environment-level semantic parameter under
    which a relational core is interpreted. It affects observable results but
    not the relational pattern of a query. The engine takes a value of
    {!type:t}; the same ARC query can be run under any combination.

    The paper's worked example (Eq 15): under {!Agg_zero} (Soufflé) a sum over
    an empty group is [0]; under {!Agg_null} (SQL) it is [NULL]. *)

type collection_semantics = Set | Bag
(** Set semantics deduplicates every collection result; bag semantics keeps
    multiplicities (paper, Section 2.7). *)

type null_logic = Two_valued | Three_valued
(** Under [Three_valued], comparisons with NULL yield [Unknown] (SQL).
    Under [Two_valued], NULLs compare structurally, as in formalisms that
    make null checks explicit (paper, Section 2.10, citing [43]). *)

type agg_empty = Agg_null | Agg_zero
(** Result of [sum]/[min]/[max]/[avg] over an empty group. [count] is always
    [0] in either convention, as in both SQL and Soufflé. *)

type t = {
  collection : collection_semantics;
  null_logic : null_logic;
  agg_empty : agg_empty;
}

val sql : t
(** SQL conventions: bag semantics, three-valued logic, aggregates on empty
    input yield NULL. *)

val sql_set : t
(** SQL with [SELECT DISTINCT] everywhere: set semantics variant of {!sql}. *)

val souffle : t
(** Soufflé conventions: set semantics, two-valued logic (no NULL),
    sum over the empty set is 0. *)

val classical : t
(** Classical TRC / first-order conventions: set semantics, two-valued
    logic. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
