type t = True | False | Unknown

let of_bool = function true -> True | false -> False

let to_bool = function True -> true | False | Unknown -> false

let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let and_list l = List.fold_left and_ True l
let or_list l = List.fold_left or_ False l

let equal (a : t) (b : t) = a = b

let to_string = function
  | True -> "true"
  | False -> "false"
  | Unknown -> "unknown"

let pp fmt t = Format.pp_print_string fmt (to_string t)
