(** The per-experiment catalog: one {!entry} per figure/equation group of
    the paper, each carrying executable verification checks (the behaviors
    the paper reports) and renderable artifacts (the representations its
    figures show).

    [bench/main.ml] regenerates the paper's reported behaviors from this
    catalog and times each experiment; [EXPERIMENTS.md] records the
    paper-vs-measured outcomes; the test suite asserts that every check
    passes. *)

type outcome = {
  label : string;  (** what the paper reports *)
  expected : string;
  measured : string;
  ok : bool;
}

type entry = {
  id : string;  (** e.g. ["E19-count-bug"] *)
  paper_ref : string;  (** e.g. ["Section 3.2, Figs 21, Eqs 27-29"] *)
  title : string;
  run : unit -> outcome list;
  artifacts : unit -> (string * string) list;
      (** named renderings: comprehension text, ALT, higraph, SQL, … *)
}

val all : entry list
val by_id : string -> entry option
val outcome_to_string : outcome -> string
