open Arc_core.Ast
module V = Arc_value.Value
module B3 = Arc_value.Bool3
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Tuple = Arc_relation.Tuple
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module Printer = Arc_syntax.Printer
module Alt = Arc_alt.Alt
module Higraph = Arc_higraph.Higraph
module Pattern = Arc_core.Pattern
module Analysis = Arc_core.Analysis

type outcome = {
  label : string;
  expected : string;
  measured : string;
  ok : bool;
}

type entry = {
  id : string;
  paper_ref : string;
  title : string;
  run : unit -> outcome list;
  artifacts : unit -> (string * string) list;
}

let outcome_to_string o =
  Printf.sprintf "[%s] %s: expected %s, measured %s"
    (if o.ok then "ok" else "FAIL")
    o.label o.expected o.measured

(* ------------------------------------------------------------------ *)
(* Outcome helpers                                                     *)
(* ------------------------------------------------------------------ *)

let rel_to_line r =
  let r = Relation.sort (Relation.dedup r) in
  "{"
  ^ String.concat "; "
      (List.map
         (fun tp ->
           "("
           ^ String.concat ","
               (List.map V.to_string (Tuple.values tp))
           ^ ")")
         (Relation.tuples r))
  ^ "}"

let check label ~expected ~measured =
  { label; expected; measured; ok = expected = measured }

let check_bool label expected measured =
  check label ~expected:(string_of_bool expected)
    ~measured:(string_of_bool measured)

let check_rel label expected r =
  check label ~expected ~measured:(rel_to_line r)

let check_rels_equal label r1 r2 =
  {
    label;
    expected = rel_to_line r1;
    measured = rel_to_line r2;
    ok = Relation.equal_set r1 r2;
  }

let eval ?conv ?(defs = []) ~db c =
  Eval.run_rows ?conv ~db { defs; main = Coll c }

let sql ~db q = Arc_sql.Eval_sql.run_string ~db q

let arc_artifacts ?(name = "ARC") c =
  let q = Coll c in
  [
    (name ^ " (comprehension)", Printer.pretty_query q);
    (name ^ " (ALT)", Alt.render (Alt.link (Alt.of_query q)));
    (name ^ " (higraph)", Higraph.render (Higraph.of_query q));
  ]

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

let e1 =
  {
    id = "E1-trc";
    paper_ref = "Eq (1), Fig 2";
    title = "TRC query in ARC: three modalities and evaluation";
    run =
      (fun () ->
        let r = eval ~db:Data.db_rs Data.eq1 in
        let printed = Printer.query (Coll Data.eq1) in
        let reparsed = Arc_syntax.Parser.query_of_string printed in
        let normalized =
          Arc_trc.Trc.to_arc
            "{r.A | r in R and exists s[r.B = s.B and s.C = 0 and s in S]}"
        in
        let renested = Arc_core.Rewrite.merge_nested_exists (Coll normalized) in
        [
          check_rel "evaluation on the worked instance" "{(1)}" r;
          check_bool
            "textbook TRC normalizes to Eq 1 (after Section 2.7 unnesting)"
            true
            (equal_query
               (Arc_core.Canon.canonical_query renested)
               (Arc_core.Canon.canonical_query (Coll Data.eq1)));
          check_bool "comprehension text round-trips" true
            (equal_query reparsed (Coll Data.eq1));
          check_bool "validates" true
            (Analysis.validate_query (Coll Data.eq1) = Ok ());
          check "ALT size" ~expected:"9"
            ~measured:
              (string_of_int (Alt.size (Alt.of_query (Coll Data.eq1))));
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq1
        @ [
            ( "SQL (via ARC→SQL)",
              Arc_sql.Print.statement
                (Arc_sql.Of_arc.statement (program (Coll Data.eq1))) );
          ]);
  }

let e2 =
  {
    id = "E2-lateral";
    paper_ref = "Eq (2), Fig 3";
    title = "Nested comprehension = SQL lateral join";
    run =
      (fun () ->
        let db =
          Database.of_list
            [
              ("X", Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 5 ] ]);
              ("Y", Relation.of_rows [ "A" ] [ [ V.Int 2 ]; [ V.Int 6 ] ]);
            ]
        in
        let via_arc = eval ~db Data.eq2 in
        let via_sql = sql ~db Data.sql_fig3a in
        [ check_rels_equal "ARC ≡ SQL lateral (Fig 3a)" via_sql via_arc ]);
    artifacts =
      (fun () -> arc_artifacts Data.eq2 @ [ ("SQL (Fig 3a)", Data.sql_fig3a) ]);
  }

let e3 =
  {
    id = "E3-fio";
    paper_ref = "Eq (3), Fig 4";
    title = "Grouped aggregate, from the inside out (FIO)";
    run =
      (fun () ->
        let via_arc = eval ~db:Data.db_grouping Data.eq3 in
        let via_sql = sql ~db:Data.db_grouping Data.sql_fig4a in
        let pat = Pattern.of_collection Data.eq3 in
        [
          check_rels_equal "ARC ≡ SQL GROUP BY (Fig 4a)" via_sql via_arc;
          check "aggregation style" ~expected:"FIO"
            ~measured:
              (String.concat ","
                 (List.map Pattern.agg_style_to_string pat.Pattern.agg_styles));
          check "relation references" ~expected:"R×1"
            ~measured:
              (String.concat ";"
                 (List.map
                    (fun (n, c) -> Printf.sprintf "%s×%d" n c)
                    pat.Pattern.rel_refs));
        ]);
    artifacts =
      (fun () -> arc_artifacts Data.eq3 @ [ ("SQL (Fig 4a)", Data.sql_fig4a) ]);
  }

let e4 =
  {
    id = "E4-foi";
    paper_ref = "Eqs (4)-(7), Fig 5";
    title = "From the outside in (Klug, Hella, Soufflé) — four formulations agree";
    run =
      (fun () ->
        let via_fio = eval ~db:Data.db_grouping Data.eq3 in
        let via_foi = eval ~db:Data.db_grouping Data.eq7 in
        let via_scalar = sql ~db:Data.db_grouping Data.sql_fig5a in
        let via_lateral = sql ~db:Data.db_grouping Data.sql_fig5b in
        let via_souffle =
          Arc_datalog.Eval.query ~db:Data.db_grouping
            (Arc_datalog.Parse.program_of_string Data.souffle_eq6)
            "Q"
        in
        let pat = Pattern.of_collection Data.eq7 in
        [
          check_rels_equal "FOI ≡ FIO" via_fio via_foi;
          check_rels_equal "FOI ≡ SQL scalar subquery (Fig 5a)" via_scalar via_foi;
          check_rels_equal "FOI ≡ SQL lateral (Fig 5b)" via_lateral via_foi;
          check "Soufflé rule result (Eq 6)" ~expected:(rel_to_line via_fio)
            ~measured:(rel_to_line via_souffle);
          check "aggregation style" ~expected:"FOI"
            ~measured:
              (String.concat ","
                 (List.map Pattern.agg_style_to_string pat.Pattern.agg_styles));
          check "relation references (two logical copies)" ~expected:"R×2"
            ~measured:
              (String.concat ";"
                 (List.map
                    (fun (n, c) -> Printf.sprintf "%s×%d" n c)
                    pat.Pattern.rel_refs));
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq7
        @ [
            ("SQL scalar subquery (Fig 5a)", Data.sql_fig5a);
            ("SQL lateral join (Fig 5b)", Data.sql_fig5b);
            ("Soufflé (Eq 6)", Data.souffle_eq6);
          ]);
  }

let e5 =
  {
    id = "E5-multi-agg";
    paper_ref = "Eq (8), Fig 6";
    title = "Multiple aggregates in one scope; HAVING as outer selection";
    run =
      (fun () ->
        let via_arc = eval ~db:Data.db_payroll Data.eq8 in
        let via_sql = sql ~db:Data.db_payroll Data.sql_fig6a in
        let pat = Pattern.of_collection Data.eq8 in
        [
          check_rels_equal "ARC ≡ SQL (Fig 6a)" via_sql via_arc;
          check "R and S referenced once each" ~expected:"R×1;S×1"
            ~measured:
              (String.concat ";"
                 (List.map
                    (fun (n, c) -> Printf.sprintf "%s×%d" n c)
                    pat.Pattern.rel_refs));
        ]);
    artifacts =
      (fun () -> arc_artifacts Data.eq8 @ [ ("SQL (Fig 6a)", Data.sql_fig6a) ]);
  }

let e6 =
  {
    id = "E6-hella";
    paper_ref = "Eqs (9)-(10), Fig 7";
    title = "Hella et al.: same result, modified relational pattern";
    run =
      (fun () ->
        let via_eq8 = eval ~db:Data.db_payroll Data.eq8 in
        let via_eq10 = eval ~db:Data.db_payroll Data.eq10 in
        let pat = Pattern.of_collection Data.eq10 in
        [
          check_rels_equal "Eq 10 ≡ Eq 8 on the running example" via_eq8
            via_eq10;
          check "base relations referenced three times each"
            ~expected:"R×3;S×3"
            ~measured:
              (String.concat ";"
                 (List.map
                    (fun (n, c) -> Printf.sprintf "%s×%d" n c)
                    pat.Pattern.rel_refs));
        ]);
    artifacts = (fun () -> arc_artifacts Data.eq10);
  }

let e7 =
  {
    id = "E7-rel";
    paper_ref = "Eqs (11)-(12), Fig 8";
    title = "Rel: separate scope per aggregate";
    run =
      (fun () ->
        let via_eq8 = eval ~db:Data.db_payroll Data.eq8 in
        let via_eq12 = eval ~db:Data.db_payroll Data.eq12 in
        let rel_schemas =
          [ ("R", [ "empl"; "dept" ]); ("S", [ "empl"; "sal" ]) ]
        in
        let via_rel =
          eval ~db:Data.db_payroll
            (Arc_rellang.Rel.to_arc ~schemas:rel_schemas
               Arc_rellang.Rel.paper_eq11)
        in
        let pat = Pattern.of_collection Data.eq12 in
        [
          check_rels_equal "Eq 12 ≡ Eq 8" via_eq8 via_eq12;
          check_bool "Rel embedding (Eq 11) gives the same rows" true
            (List.sort compare
               (List.map
                  (fun tp -> List.map V.to_string (Tuple.values tp))
                  (Relation.tuples via_rel))
            = List.sort compare
                (List.map
                   (fun tp -> List.map V.to_string (Tuple.values tp))
                   (Relation.tuples via_eq12)));
          check "base relations referenced twice each" ~expected:"R×2;S×2"
            ~measured:
              (String.concat ";"
                 (List.map
                    (fun (n, c) -> Printf.sprintf "%s×%d" n c)
                    pat.Pattern.rel_refs));
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq12
        @ [ ("Rel (Eq 11)", Arc_rellang.Rel.to_string Arc_rellang.Rel.paper_eq11) ]);
  }

let e8 =
  {
    id = "E8-sentences";
    paper_ref = "Eqs (13)-(14), Fig 9";
    title = "Boolean sentences with aggregate comparison predicates";
    run =
      (fun () ->
        let t13 =
          Eval.run_truth ~db:Data.db_boolean (program (Sentence Data.eq13))
        in
        let t14 =
          Eval.run_truth ~db:Data.db_boolean (program (Sentence Data.eq14))
        in
        let sql_unary = sql ~db:Data.db_boolean Data.sql_fig9a in
        [
          check "Eq 13 sentence" ~expected:"true" ~measured:(B3.to_string t13);
          check "Eq 14 sentence" ~expected:"true" ~measured:(B3.to_string t14);
          check "SQL can only return a unary relation (Fig 9a)" ~expected:"1"
            ~measured:(string_of_int (Relation.cardinality sql_unary));
        ]);
    artifacts =
      (fun () ->
        [
          ("ARC sentence (Eq 13)", Printer.query (Sentence Data.eq13));
          ("ARC sentence (Eq 14)", Printer.query (Sentence Data.eq14));
          ( "higraph (Eq 14)",
            Higraph.render (Higraph.of_query (Sentence Data.eq14)) );
          ("SQL workaround (Fig 9a)", Data.sql_fig9a);
        ]);
  }

let e9 =
  {
    id = "E9-conventions";
    paper_ref = "Eq (15), Section 2.6, Fig 13d";
    title = "Conventions: sum over empty group — Soufflé 0 vs SQL NULL";
    run =
      (fun () ->
        let souffle_rows =
          eval ~conv:Conventions.souffle ~db:Data.db_souffle Data.eq15
        in
        let sqlish_rows =
          eval ~conv:Conventions.sql_set ~db:Data.db_souffle Data.eq15
        in
        let via_souffle_engine =
          Arc_datalog.Eval.query ~db:Data.db_souffle
            (Arc_datalog.Parse.program_of_string Data.souffle_eq15)
            "Q"
        in
        [
          check_rel "ARC under Soufflé conventions derives Q(1,0)" "{(1,0)}"
            souffle_rows;
          check_rel "ARC under SQL conventions derives (1, NULL)"
            "{(1,null)}" sqlish_rows;
          check_rel "the Soufflé substrate agrees" "{(1,0)}"
            via_souffle_engine;
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq15
        @ [ ("Soufflé rule (Eq 15)", Data.souffle_eq15) ]);
  }

let e10 =
  {
    id = "E10-set-bag";
    paper_ref = "Section 2.7";
    title = "Set vs bag: (un)nesting is a rewrite only under set semantics";
    run =
      (fun () ->
        let db =
          Database.of_list
            [
              ("R", Relation.of_rows [ "A"; "B" ] [ [ V.Int 1; V.Int 7 ] ]);
              ("S", Relation.of_rows [ "B" ] [ [ V.Int 7 ]; [ V.Int 7 ] ]);
            ]
        in
        let set_n = eval ~conv:Conventions.sql_set ~db Data.sec27_nested in
        let set_u = eval ~conv:Conventions.sql_set ~db Data.sec27_unnested in
        let bag_n = eval ~conv:Conventions.sql ~db Data.sec27_nested in
        let bag_u = eval ~conv:Conventions.sql ~db Data.sec27_unnested in
        [
          check_rels_equal "equal under set semantics" set_n set_u;
          check "bag: nested, once per r" ~expected:"1"
            ~measured:(string_of_int (Relation.cardinality bag_n));
          check "bag: unnested, once per pair" ~expected:"2"
            ~measured:(string_of_int (Relation.cardinality bag_u));
        ]);
    artifacts =
      (fun () ->
        [
          ("nested", Printer.query (Coll Data.sec27_nested));
          ("unnested", Printer.query (Coll Data.sec27_unnested));
        ]);
  }

let e11 =
  {
    id = "E11-dedup";
    paper_ref = "Section 2.7 (Deduplication)";
    title = "DISTINCT as grouping on all projected attributes";
    run =
      (fun () ->
        let db =
          Database.of_list
            [
              ( "R",
                Relation.of_rows [ "A"; "B" ]
                  [
                    [ V.Int 1; V.Int 2 ]; [ V.Int 1; V.Int 2 ];
                    [ V.Int 3; V.Int 4 ];
                  ] );
            ]
        in
        let r = eval ~conv:Conventions.sql ~db Data.dedup_grouping in
        [
          check "grouping deduplicates even under bag semantics"
            ~expected:"2"
            ~measured:(string_of_int (Relation.cardinality r));
        ]);
    artifacts = (fun () -> arc_artifacts Data.dedup_grouping);
  }

let e12 =
  {
    id = "E12-recursion";
    paper_ref = "Eq (16), Fig 10";
    title = "Recursion: one definition with a disjunction, LFP semantics";
    run =
      (fun () ->
        let via_arc =
          Eval.run_rows ~db:Data.db_parent
            { defs = Data.eq16_defs; main = Coll Data.eq16_main }
        in
        let via_datalog =
          Arc_datalog.Eval.query ~db:Data.db_parent
            (Arc_datalog.Parse.program_of_string Data.souffle_eq16)
            "A"
        in
        let via_sql =
          sql ~db:Data.db_parent
            "with recursive A(s, t) as (select P.s, P.t from P union select \
             P.s, A.t from P, A where P.t = A.s) select A.s, A.t from A"
        in
        [
          check_rel "ancestor closure" "{(1,2); (1,3); (1,4); (2,3); (2,4); (3,4)}"
            via_arc;
          check_bool "Datalog two-rule program agrees" true
            (Relation.cardinality via_datalog = Relation.cardinality via_arc);
          check_rels_equal "SQL WITH RECURSIVE agrees" via_sql via_arc;
        ]);
    artifacts =
      (fun () ->
        [
          ( "ARC (Eq 16)",
            Printer.program { defs = Data.eq16_defs; main = Coll Data.eq16_main }
          );
          ("Datalog", Data.souffle_eq16);
          ( "ALT",
            Alt.render
              (Alt.of_program
                 { defs = Data.eq16_defs; main = Coll Data.eq16_main }) );
        ]);
  }

let e13 =
  {
    id = "E13-not-in";
    paper_ref = "Eq (17), Fig 11";
    title = "NOT IN under NULLs: 3VL behavior in two-valued logic";
    run =
      (fun () ->
        let sql_not_in = sql ~db:Data.db_nulls Data.sql_fig11a in
        let sql_rewrite = sql ~db:Data.db_nulls Data.sql_fig11b in
        let via_arc =
          eval ~conv:Conventions.classical ~db:Data.db_nulls Data.eq17
        in
        let plain =
          eval ~conv:Conventions.classical ~db:Data.db_nulls
            Data.eq17_plain_not_exists
        in
        (* and the SQL→ARC translator inserts the checks automatically *)
        let translated =
          Arc_sql.To_arc.statement
            ~schemas:[ ("R", [ "A" ]); ("S", [ "A" ]) ]
            (Arc_sql.Parse.statement_of_string Data.sql_fig11a)
        in
        let via_translation =
          Eval.run_rows ~conv:Conventions.sql ~db:Data.db_nulls translated
        in
        [
          check "SQL NOT IN returns nothing (S contains NULL)" ~expected:"{}"
            ~measured:(rel_to_line sql_not_in);
          check_rels_equal "NOT EXISTS rewrite (Fig 11b) agrees" sql_not_in
            sql_rewrite;
          check_rels_equal "ARC Eq 17 under 2VL agrees" sql_not_in via_arc;
          check_rel "without null checks, 2VL ¬∃ returns {2}" "{(2)}" plain;
          check_rels_equal "SQL→ARC inserts the null checks" sql_not_in
            via_translation;
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq17
        @ [
            ("SQL NOT IN (Fig 11a)", Data.sql_fig11a);
            ("SQL NOT EXISTS rewrite (Fig 11b)", Data.sql_fig11b);
          ]);
  }

let e14 =
  {
    id = "E14-outer-join";
    paper_ref = "Eq (18), Fig 12";
    title = "Join annotations with a literal leaf: left(r, inner(11, s))";
    run =
      (fun () ->
        let via_arc = eval ~conv:Conventions.sql ~db:Data.db_outer Data.eq18 in
        let via_sql = sql ~db:Data.db_outer Data.sql_fig12a in
        [
          check_rels_equal "ARC ≡ SQL ON-clause semantics" via_sql via_arc;
          check_rel "r2 survives NULL-padded" "{('r1','s1'); ('r2',null)}"
            via_arc;
        ]);
    artifacts =
      (fun () ->
        arc_artifacts Data.eq18 @ [ ("SQL (Fig 12a)", Data.sql_fig12a) ]);
  }

let e15 =
  {
    id = "E15-scalar-lateral";
    paper_ref = "Fig 13, Section 2.12";
    title = "Scalar subquery ≡ lateral; LEFT JOIN + GROUP BY is not";
    run =
      (fun () ->
        let scalar = sql ~db:Data.db_fig13 Data.sql_fig13a in
        let lateral = sql ~db:Data.db_fig13 Data.sql_fig13b in
        let leftjoin = sql ~db:Data.db_fig13 Data.sql_fig13c in
        let arc_lateral =
          eval ~conv:Conventions.sql ~db:Data.db_fig13 Data.fig13_lateral
        in
        let arc_leftjoin =
          eval ~conv:Conventions.sql ~db:Data.db_fig13 Data.fig13_leftjoin
        in
        [
          check_bool "scalar ≡ lateral under bag semantics" true
            (Relation.equal_bag (Relation.sort scalar) (Relation.sort lateral));
          check "lateral keeps both duplicate R rows" ~expected:"2"
            ~measured:(string_of_int (Relation.cardinality lateral));
          check "left join + group by collapses them" ~expected:"1"
            ~measured:(string_of_int (Relation.cardinality leftjoin));
          check "ARC lateral form matches" ~expected:"2"
            ~measured:(string_of_int (Relation.cardinality arc_lateral));
          check "ARC left-join form matches" ~expected:"1"
            ~measured:(string_of_int (Relation.cardinality arc_leftjoin));
        ]);
    artifacts =
      (fun () ->
        arc_artifacts ~name:"ARC lateral (Fig 13d)" Data.fig13_lateral
        @ [
            ("SQL scalar (Fig 13a)", Data.sql_fig13a);
            ("SQL lateral (Fig 13b)", Data.sql_fig13b);
            ("SQL left join (Fig 13c, incorrect)", Data.sql_fig13c);
          ]);
  }

let e16 =
  {
    id = "E16-externals";
    paper_ref = "Eqs (19)-(21), Fig 15";
    title = "External relations: relationalized '-' and '>'";
    run =
      (fun () ->
        let r19 = eval ~db:Data.db_external Data.eq19 in
        let r20 = eval ~db:Data.db_external Data.eq20 in
        let r21 = eval ~db:Data.db_external Data.eq21 in
        let env =
          Analysis.env
            ~schemas:[ ("R", [ "A"; "B" ]); ("S", [ "B" ]); ("T", [ "B" ]) ]
            ()
        in
        let safe20 = Analysis.collection_safety ~env ~defs:[] Data.eq20 in
        [
          check_rel "direct arithmetic (Eq 19)" "{(1)}" r19;
          check_rels_equal "relationalized Minus (Eq 20)" r19 r20;
          check_rels_equal "equijoin via Bigger (Eq 21)" r19 r21;
          check_bool "access patterns restore safety" true (safe20 = Analysis.Safe);
        ]);
    artifacts =
      (fun () ->
        arc_artifacts ~name:"Eq 21" Data.eq21
        @ [ ("Eq 19", Printer.query (Coll Data.eq19));
            ("Eq 20", Printer.query (Coll Data.eq20)) ]);
  }

let e17 =
  {
    id = "E17-unique-set";
    paper_ref = "Eqs (22)-(24), Figs 16-19";
    title = "Unique-set query and the abstract relation Subset";
    run =
      (fun () ->
        let plain = eval ~db:Data.db_beers Data.eq22 in
        let modular =
          Eval.run_rows ~db:Data.db_beers
            { defs = [ Data.eq23_subset ]; main = Coll Data.eq24 }
        in
        let via_sql = sql ~db:Data.db_beers Data.sql_fig17 in
        let env = Analysis.env ~schemas:[ ("L", [ "d"; "b" ]) ] () in
        let subset_safety =
          Analysis.collection_safety ~env ~defs:[]
            Data.eq23_subset.def_body
        in
        [
          check_rel "only cal's beer set is unique" "{('cal')}" plain;
          check_rels_equal "modular Eq 24 ≡ flat Eq 22" plain modular;
          check_rels_equal "SQL Fig 17 agrees" via_sql plain;
          check_bool "Subset is unsafe in isolation (abstract)" true
            (match subset_safety with Analysis.Unsafe _ -> true | _ -> false);
        ]);
    artifacts =
      (fun () ->
        [
          ("ARC flat (Eq 22)", Printer.pretty_query (Coll Data.eq22));
          ( "ARC modular (Eq 24) with def Subset (Eq 23)",
            Printer.program
              { defs = [ Data.eq23_subset ]; main = Coll Data.eq24 } );
          ( "higraph with collapsed module (Fig 16)",
            Higraph.render
              (Higraph.of_query ~collapse:[ "Subset" ] (Coll Data.eq24)) );
          ("SQL (Fig 17)", Data.sql_fig17);
        ]);
  }

let e18 =
  {
    id = "E18-matmul";
    paper_ref = "Eqs (25)-(26), Fig 20, Section 3.1";
    title = "Matrix multiplication over sparse relations";
    run =
      (fun () ->
        let r = eval ~db:Data.db_matrices Data.eq26 in
        let r_ext = eval ~db:Data.db_matrices Data.eq26_external in
        (* dense oracle: [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]] *)
        [
          check_rel "C = A×B" "{(1,1,19); (2,1,43); (1,2,22); (2,2,50)}" r;
          check_rels_equal "external '*' variant (Fig 20) agrees" r r_ext;
        ]);
    artifacts =
      (fun () ->
        arc_artifacts ~name:"Eq 26" Data.eq26
        @ [
            ( "Fig 20 variant (external '*')",
              Printer.pretty_query (Coll Data.eq26_external) );
            ( "higraph (Fig 20)",
              Higraph.render (Higraph.of_query (Coll Data.eq26_external)) );
          ]);
  }

let e19 =
  {
    id = "E19-count-bug";
    paper_ref = "Eqs (27)-(29), Fig 21, Section 3.2";
    title = "The count bug";
    run =
      (fun () ->
        let r27 = eval ~db:Data.db_countbug Data.eq27 in
        let r28 = eval ~db:Data.db_countbug Data.eq28 in
        let r29 = eval ~db:Data.db_countbug Data.eq29 in
        let s21a = sql ~db:Data.db_countbug Data.sql_fig21a in
        let s21b = sql ~db:Data.db_countbug Data.sql_fig21b in
        let s21c = sql ~db:Data.db_countbug Data.sql_fig21c in
        [
          check_rel "Eq 27 (original) returns 9" "{(9)}" r27;
          check_rel "Eq 28 (incorrect decorrelation) loses the row" "{}" r28;
          check_rel "Eq 29 (left-join decorrelation) returns 9" "{(9)}" r29;
          check_rels_equal "SQL Fig 21a agrees with Eq 27" s21a r27;
          check_rels_equal "SQL Fig 21b agrees with Eq 28" s21b r28;
          check_rels_equal "SQL Fig 21c agrees with Eq 29" s21c r29;
        ]);
    artifacts =
      (fun () ->
        [
          ("Eq 27", Printer.pretty_query (Coll Data.eq27));
          ("Eq 28", Printer.pretty_query (Coll Data.eq28));
          ("Eq 29", Printer.pretty_query (Coll Data.eq29));
          ("SQL (Fig 21a)", Data.sql_fig21a);
          ("SQL (Fig 21b)", Data.sql_fig21b);
          ("SQL (Fig 21c)", Data.sql_fig21c);
          ( "higraph (Eq 27)",
            Higraph.render (Higraph.of_query (Coll Data.eq27)) );
        ]);
  }

let e20 =
  {
    id = "E20-intent";
    paper_ref = "Sections 1 and 4 (NL2SQL)";
    title = "Intent-based vs surface-based query comparison";
    run =
      (fun () ->
        let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ] in
        let gold = "select R.A from R, S where R.B = S.B and S.C = 0" in
        let equivalent =
          "select  r.A\nfrom R r join S s on r.B = s.B\nwhere s.C = 0"
        in
        let misleading = "select R.A from R, S where R.B = S.B and S.C = 1" in
        let r1 =
          Arc_intent.Intent.compare_sql ~schemas ~gold ~candidate:equivalent ()
        in
        let r2 =
          Arc_intent.Intent.compare_sql ~schemas ~gold ~candidate:misleading ()
        in
        [
          check_bool "equivalent pair: exact string match fails" false
            r1.Arc_intent.Intent.exact_string_match;
          check_bool "equivalent pair: intent similarity = 1" true
            (r1.Arc_intent.Intent.intent_similarity >= 0.999);
          check_bool "equivalent pair: execution equivalent" true
            (r1.Arc_intent.Intent.execution_equivalent = Some true);
          check_bool "misleading pair: surface similarity > 0.9" true
            (r2.Arc_intent.Intent.surface_similarity > 0.9);
          check_bool "misleading pair: not equivalent" true
            (r2.Arc_intent.Intent.execution_equivalent = Some false);
        ]);
    artifacts =
      (fun () ->
        let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ] in
        let gold = "select R.A from R, S where R.B = S.B and S.C = 0" in
        let equivalent =
          "select  r.A\nfrom R r join S s on r.B = s.B\nwhere s.C = 0"
        in
        [
          ( "report",
            Arc_intent.Intent.report_to_string
              (Arc_intent.Intent.compare_sql ~schemas ~gold
                 ~candidate:equivalent ()) );
        ]);
  }

let e21 =
  {
    id = "E21-alt-vs-ast";
    paper_ref = "Sections 1, 2.2 (the SQLGlot discussion)";
    title = "ALT reflects semantics where the AST reflects syntax";
    run =
      (fun () ->
        let q = "select R.A, S.C from R join S on R.B = S.B" in
        let stmt = Arc_sql.Parse.statement_of_string q in
        (* syntax tree: the join is a FROM item of the SELECT *)
        let joins_under_select =
          match stmt.Arc_sql.Ast.body with
          | Arc_sql.Ast.Q_select s -> (
              match s.Arc_sql.Ast.from with
              | [ Arc_sql.Ast.T_join _ ] -> true
              | _ -> false)
          | _ -> false
        in
        (* ALT: both relations are sibling bindings of one quantifier *)
        let prog =
          Arc_sql.To_arc.statement
            ~schemas:[ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]
            stmt
        in
        let alt = Alt.of_program prog in
        let sibling_bindings =
          let rec find n =
            match n.Alt.kind with
            | Alt.Quantifier_node ->
                List.length
                  (List.filter
                     (fun c ->
                       match c.Alt.kind with
                       | Alt.Binding_node _ -> true
                       | _ -> false)
                     n.Alt.children)
            | _ ->
                List.fold_left (fun acc c -> max acc (find c)) 0 n.Alt.children
          in
          find alt.Alt.root
        in
        [
          check_bool "AST: join nested under the SELECT's FROM" true
            joins_under_select;
          check "ALT: two sibling bindings in one scope" ~expected:"2"
            ~measured:(string_of_int sibling_bindings);
        ]);
    artifacts =
      (fun () ->
        let q = "select R.A, S.C from R join S on R.B = S.B" in
        let prog =
          Arc_sql.To_arc.statement
            ~schemas:[ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]
            (Arc_sql.Parse.statement_of_string q)
        in
        [
          ("SQL", q);
          ("ALT", Alt.render (Alt.link (Alt.of_program prog)));
          ("ARC", Printer.program prog);
        ]);
  }

let e22 =
  {
    id = "E22-fragments";
    paper_ref = "Sections 2.1, 2.13.2 (strict generalization of TRC)";
    title = "Fragment classification: ARC strictly generalizes TRC";
    run =
      (fun () ->
        let module F = Arc_core.Fragment in
        let trc_members =
          [ Coll Data.eq1; Coll Data.eq17; Coll Data.eq22 ]
        in
        let extensions =
          [ Coll Data.eq3; Coll Data.eq18; Coll Data.eq26 ]
        in
        [
          check_bool "paper's TRC-fragment queries classify as TRC" true
            (List.for_all F.is_trc trc_members);
          check_bool "every TRC query validates as ARC" true
            (List.for_all
               (fun q -> Analysis.validate_query q = Ok ())
               trc_members);
          check_bool "aggregation/join/arith queries are proper extensions"
            true
            (List.for_all (fun q -> not (F.is_trc q)) extensions);
          check "unique-set fragment name" ~expected:"TRC (relationally complete)"
            ~measured:(F.name (Coll Data.eq22));
          check_bool "ancestor program uses recursion" true
            (F.uses_recursion
               { defs = Data.eq16_defs; main = Coll Data.eq16_main });
        ]);
    artifacts =
      (fun () ->
        let module F = Arc_core.Fragment in
        [
          ( "fragment names",
            String.concat "\n"
              (List.map
                 (fun (n, c) -> Printf.sprintf "%-18s %s" n (F.name (Coll c)))
                 [
                   ("eq1", Data.eq1); ("eq3", Data.eq3); ("eq18", Data.eq18);
                   ("eq22", Data.eq22); ("eq26", Data.eq26);
                 ]) );
        ]);
  }

let e23 =
  {
    id = "E23-rewrites";
    paper_ref = "Sections 2.7, 2.10 (convention-dependent rewrites)";
    title = "Rewrites: sound under the conventions the paper states";
    run =
      (fun () ->
        let db =
          Database.of_list
            [
              ("R", Arc_relation.Relation.of_rows [ "A"; "B" ] [ [ V.Int 1; V.Int 7 ] ]);
              ( "S",
                Arc_relation.Relation.of_rows [ "B"; "C" ]
                  [ [ V.Int 7; V.Int 0 ]; [ V.Int 7; V.Int 1 ] ] );
            ]
        in
        let nested = Coll Data.sec27_nested in
        let merged = Arc_core.Rewrite.merge_nested_exists nested in
        let set_eq =
          Arc_relation.Relation.equal_set
            (Eval.run_rows ~conv:Conventions.sql_set ~db (program nested))
            (Eval.run_rows ~conv:Conventions.sql_set ~db (program merged))
        in
        let bag_n =
          Arc_relation.Relation.cardinality
            (Eval.run_rows ~conv:Conventions.sql ~db (program nested))
        in
        let bag_m =
          Arc_relation.Relation.cardinality
            (Eval.run_rows ~conv:Conventions.sql ~db (program merged))
        in
        let prog =
          { defs = [ Data.eq23_subset ]; main = Coll Data.eq24 }
        in
        let inlined = Arc_core.Rewrite.inline_definitions prog in
        [
          check_bool "unnesting is sound under set semantics" true set_eq;
          check "…but changes bag multiplicities: nested" ~expected:"1"
            ~measured:(string_of_int bag_n);
          check "…unnested" ~expected:"2" ~measured:(string_of_int bag_m);
          check_bool "inlining keeps abstract definitions" true
            (List.length inlined.defs = 1);
        ]);
    artifacts =
      (fun () ->
        [
          ("nested (Section 2.7)", Printer.query (Coll Data.sec27_nested));
          ( "merged by the rewrite",
            Printer.query
              (Arc_core.Rewrite.merge_nested_exists (Coll Data.sec27_nested)) );
        ]);
  }

let all =
  [
    e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16;
    e17; e18; e19; e20; e21; e22; e23;
  ]

let by_id id = List.find_opt (fun e -> e.id = id) all
