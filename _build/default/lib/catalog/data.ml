open Arc_core.Ast
open Arc_core.Build
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

let i = V.int
let s = V.str

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

let db_rs =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 2; i 20 ]; [ i 3; i 30 ] ] );
      ( "S",
        Relation.of_rows [ "B"; "C" ]
          [ [ i 10; i 0 ]; [ i 20; i 5 ]; [ i 99; i 0 ] ] );
    ]

let db_grouping =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
    ]

let db_payroll =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "empl"; "dept" ]
          [ [ s "e1"; s "d1" ]; [ s "e2"; s "d1" ]; [ s "e3"; s "d2" ] ] );
      ( "S",
        Relation.of_rows [ "empl"; "sal" ]
          [ [ s "e1"; i 60 ]; [ s "e2"; i 60 ]; [ s "e3"; i 50 ] ] );
    ]

let db_boolean =
  Database.of_list
    [
      ("R", Relation.of_rows [ "id"; "q" ] [ [ i 1; i 2 ] ]);
      ( "S",
        Relation.of_rows [ "id"; "d" ]
          [ [ i 1; s "a" ]; [ i 1; s "b" ]; [ i 1; s "c" ] ] );
    ]

let db_souffle =
  Database.of_list
    [
      ("R", Relation.of_rows [ "ak"; "b" ] [ [ i 1; i 2 ] ]);
      ("S", Relation.empty [ "a"; "b" ]);
    ]

let db_parent =
  Database.of_list
    [
      ( "P",
        Relation.of_rows [ "s"; "t" ]
          [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
    ]

let db_nulls =
  Database.of_list
    [
      ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 2 ] ]);
      ("S", Relation.of_rows [ "A" ] [ [ i 1 ]; [ V.Null ] ]);
    ]

let db_outer =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "m"; "y"; "h" ]
          [ [ s "r1"; i 2000; i 11 ]; [ s "r2"; i 2001; i 12 ] ] );
      ( "S",
        Relation.of_rows [ "n"; "y" ]
          [ [ s "s1"; i 2000 ]; [ s "s2"; i 2001 ] ] );
    ]

let db_fig13 =
  Database.of_list
    [
      ("R", Relation.of_rows [ "A" ] [ [ i 1 ]; [ i 1 ] ]);
      ("S", Relation.of_rows [ "A"; "B" ] [ [ i 0; i 10 ] ]);
    ]

let db_external =
  Database.of_list
    [
      ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 10 ]; [ i 2; i 3 ] ]);
      ("S", Relation.of_rows [ "B" ] [ [ i 4 ] ]);
      ("T", Relation.of_rows [ "B" ] [ [ i 5 ] ]);
    ]

let db_beers =
  Database.of_list
    [
      ( "L",
        Relation.of_rows [ "d"; "b" ]
          [
            [ s "ann"; s "ipa" ]; [ s "ann"; s "stout" ];
            [ s "bob"; s "ipa" ]; [ s "bob"; s "stout" ];
            [ s "cal"; s "ipa" ];
          ] );
    ]

let db_matrices =
  let mat rows =
    Relation.of_rows [ "row"; "col"; "val" ]
      (List.concat_map
         (fun (r, cs) -> List.map (fun (c, v) -> [ i r; i c; i v ]) cs)
         rows)
  in
  Database.of_list
    [
      ("A", mat [ (1, [ (1, 1); (2, 2) ]); (2, [ (1, 3); (2, 4) ]) ]);
      ("B", mat [ (1, [ (1, 5); (2, 6) ]); (2, [ (1, 7); (2, 8) ]) ]);
    ]

let db_countbug =
  Database.of_list
    [
      ("R", Relation.of_rows [ "id"; "q" ] [ [ i 9; i 0 ] ]);
      ("S", Relation.empty [ "id"; "d" ]);
    ]

(* ------------------------------------------------------------------ *)
(* ARC queries                                                         *)
(* ------------------------------------------------------------------ *)

(* (1)  {Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]} *)
let eq1 =
  collection "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

(* (2)  nested comprehension ≡ lateral join (Fig 3) *)
let eq2 =
  collection "Q" [ "A"; "B" ]
    (exists
       [
         bind "x" "X";
         bind_in "z"
           (collection "Z" [ "B" ]
              (exists [ bind "y" "Y" ]
                 (conj
                    [
                      eq (attr "Z" "B") (attr "y" "A");
                      lt (attr "x" "A") (attr "y" "A");
                    ])));
       ]
       (conj
          [ eq (attr "Q" "A") (attr "x" "A"); eq (attr "Q" "B") (attr "z" "B") ]))

(* (3)  grouped aggregate FIO (Fig 4) *)
let eq3 =
  collection "Q" [ "A"; "sm" ]
    (exists
       ~grouping:[ ("r", "A") ]
       [ bind "r" "R" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "sm") (sum (attr "r" "B"));
          ]))

(* (7)  the FOI pattern (Fig 5c) *)
let eq7 =
  collection "Q" [ "A"; "sm" ]
    (exists
       [
         bind "r" "R";
         bind_in "x"
           (collection "X" [ "sm" ]
              (exists ~grouping:group_all [ bind "r2" "R" ]
                 (conj
                    [
                      eq (attr "r2" "A") (attr "r" "A");
                      eq (attr "X" "sm") (sum (attr "r2" "B"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "sm") (attr "x" "sm");
          ]))

(* (8)  multiple aggregates + HAVING in one scope (Fig 6) *)
let eq8 =
  collection "Q" [ "dept"; "av" ]
    (exists
       [
         bind_in "x"
           (collection "X" [ "dept"; "av"; "sm" ]
              (exists
                 ~grouping:[ ("r", "dept") ]
                 [ bind "r" "R"; bind "s" "S" ]
                 (conj
                    [
                      eq (attr "X" "dept") (attr "r" "dept");
                      eq (attr "X" "av") (avg (attr "s" "sal"));
                      eq (attr "X" "sm") (sum (attr "s" "sal"));
                      eq (attr "r" "empl") (attr "s" "empl");
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "dept") (attr "x" "dept");
            eq (attr "Q" "av") (attr "x" "av");
            gt (attr "x" "sm") (cint 100);
          ]))

(* (10) the Hella et al. pattern (Fig 7): per-aggregate scopes, correlated *)
let eq10 =
  collection "Q" [ "dept"; "av" ]
    (exists
       [
         bind "r3" "R";
         bind "s3" "S";
         bind_in "x"
           (collection "X" [ "av" ]
              (exists
                 ~grouping:[ ("r1", "dept") ]
                 [ bind "r1" "R"; bind "s1" "S" ]
                 (conj
                    [
                      eq (attr "r1" "dept") (attr "r3" "dept");
                      eq (attr "r1" "empl") (attr "s1" "empl");
                      eq (attr "X" "av") (avg (attr "s1" "sal"));
                    ])));
         bind_in "y"
           (collection "Y" [ "sm" ]
              (exists
                 ~grouping:[ ("r2", "dept") ]
                 [ bind "r2" "R"; bind "s2" "S" ]
                 (conj
                    [
                      eq (attr "r2" "dept") (attr "r3" "dept");
                      eq (attr "r2" "empl") (attr "s2" "empl");
                      eq (attr "Y" "sm") (sum (attr "s2" "sal"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "dept") (attr "r3" "dept");
            eq (attr "Q" "av") (attr "x" "av");
            eq (attr "r3" "empl") (attr "s3" "empl");
            gt (attr "y" "sm") (cint 100);
          ]))

(* (12) the Rel pattern (Fig 8): per-aggregate scopes, uncorrelated, keyed *)
let eq12 =
  collection "Q" [ "dept"; "av" ]
    (exists
       [
         bind_in "x"
           (collection "X" [ "dept"; "av" ]
              (exists
                 ~grouping:[ ("r1", "dept") ]
                 [ bind "r1" "R"; bind "s1" "S" ]
                 (conj
                    [
                      eq (attr "X" "dept") (attr "r1" "dept");
                      eq (attr "r1" "empl") (attr "s1" "empl");
                      eq (attr "X" "av") (avg (attr "s1" "sal"));
                    ])));
         bind_in "y"
           (collection "Y" [ "dept"; "sm" ]
              (exists
                 ~grouping:[ ("r2", "dept") ]
                 [ bind "r2" "R"; bind "s2" "S" ]
                 (conj
                    [
                      eq (attr "Y" "dept") (attr "r2" "dept");
                      eq (attr "r2" "empl") (attr "s2" "empl");
                      eq (attr "Y" "sm") (sum (attr "s2" "sal"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "dept") (attr "x" "dept");
            eq (attr "Q" "av") (attr "x" "av");
            eq (attr "x" "dept") (attr "y" "dept");
            gt (attr "y" "sm") (cint 100);
          ]))

(* (13) ∃r ∈ R[∃s ∈ S, γ∅[r.id = s.id ∧ r.q ≤ count(s.d)]] *)
let eq13 =
  exists [ bind "r" "R" ]
    (exists ~grouping:group_all [ bind "s" "S" ]
       (conj
          [
            eq (attr "r" "id") (attr "s" "id");
            leq (attr "r" "q") (count (attr "s" "d"));
          ]))

(* (14) ¬∃r ∈ R[∃s ∈ S, γ∅[r.id = s.id ∧ r.q > count(s.d)]] *)
let eq14 =
  not_
    (exists [ bind "r" "R" ]
       (exists ~grouping:group_all [ bind "s" "S" ]
          (conj
             [
               eq (attr "r" "id") (attr "s" "id");
               gt (attr "r" "q") (count (attr "s" "d"));
             ])))

(* (15) Q(ak,sm) :- R(ak,_), sm = sum b : {S(a,b), a < ak}. *)
let eq15 =
  collection "Q" [ "ak"; "sm" ]
    (exists
       [
         bind "r" "R";
         bind_in "x"
           (collection "X" [ "sm" ]
              (exists ~grouping:group_all [ bind "s2" "S" ]
                 (conj
                    [
                      lt (attr "s2" "a") (attr "r" "ak");
                      eq (attr "X" "sm") (sum (attr "s2" "b"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "ak") (attr "r" "ak");
            eq (attr "Q" "sm") (attr "x" "sm");
          ]))

(* (16) ancestor with least-fixed-point semantics (Fig 10) *)
let eq16_defs =
  [
    define "A"
      (collection "A" [ "s"; "t" ]
         (disj
            [
              exists [ bind "p" "P" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "A" "t") (attr "p" "t");
                   ]);
              exists
                [ bind "p" "P"; bind "a2" "A" ]
                (conj
                   [
                     eq (attr "A" "s") (attr "p" "s");
                     eq (attr "p" "t") (attr "a2" "s");
                     eq (attr "a2" "t") (attr "A" "t");
                   ]);
            ]));
  ]

let eq16_main =
  collection "Q" [ "s"; "t" ]
    (exists [ bind "a" "A" ]
       (conj
          [ eq (attr "Q" "s") (attr "a" "s"); eq (attr "Q" "t") (attr "a" "t") ]))

(* (17) NOT IN with explicit null checks (Fig 11) *)
let eq17 =
  collection "Q" [ "A" ]
    (exists [ bind "r" "R" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            not_
              (exists [ bind "s" "S" ]
                 (disj
                    [
                      eq (attr "s" "A") (attr "r" "A");
                      is_null (attr "s" "A");
                      is_null (attr "r" "A");
                    ]));
          ]))

let eq17_plain_not_exists =
  collection "Q" [ "A" ]
    (exists [ bind "r" "R" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            not_ (exists [ bind "s" "S" ] (eq (attr "s" "A") (attr "r" "A")));
          ]))

(* (18) left(r, inner(11, s)) — Fig 12 *)
let eq18 =
  collection "Q" [ "m"; "n" ]
    (exists
       ~join:(J_left (J_var "r", J_inner [ J_lit (i 11); J_var "s" ]))
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "m") (attr "r" "m");
            eq (attr "Q" "n") (attr "s" "n");
            eq (attr "r" "y") (attr "s" "y");
            eq (attr "r" "h") (cint 11);
          ]))

(* Fig 13 (b): the lateral form ARC adopts for scalar subqueries *)
let fig13_lateral =
  collection "Q" [ "A"; "sm" ]
    (exists
       [
         bind "r" "R";
         bind_in "x"
           (collection "X" [ "sm" ]
              (exists ~grouping:group_all [ bind "s" "S" ]
                 (conj
                    [
                      lt (attr "s" "A") (attr "r" "A");
                      eq (attr "X" "sm") (sum (attr "s" "B"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "sm") (attr "x" "sm");
          ]))

(* Fig 13 (c): the LEFT JOIN + GROUP BY rewrite — the counterexample *)
let fig13_leftjoin =
  collection "Q" [ "A"; "sm" ]
    (exists
       ~grouping:[ ("r", "A") ]
       ~join:(J_left (J_var "r", J_var "s"))
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "sm") (sum (attr "s" "B"));
            lt (attr "s" "A") (attr "r" "A");
          ]))

(* (19)–(21): external relations (Fig 15) *)
let eq19 =
  collection "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S"; bind "t" "T" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            gt (sub (attr "r" "B") (attr "s" "B")) (attr "t" "B");
          ]))

let eq20 =
  collection "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S"; bind "t" "T"; bind "f" "Minus" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "f" "left") (attr "r" "B");
            eq (attr "f" "right") (attr "s" "B");
            gt (attr "f" "out") (attr "t" "B");
          ]))

let eq21 =
  collection "Q" [ "A" ]
    (exists
       [
         bind "r" "R"; bind "s" "S"; bind "t" "T";
         bind "f" "Minus"; bind "g" "Bigger";
       ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "f" "left") (attr "r" "B");
            eq (attr "f" "right") (attr "s" "B");
            eq (attr "f" "out") (attr "g" "left");
            eq (attr "g" "right") (attr "t" "B");
          ]))

(* (22) the unique-set query, relationally complete fragment *)
let eq22 =
  collection "Q" [ "d" ]
    (exists [ bind "l1" "L" ]
       (conj
          [
            eq (attr "Q" "d") (attr "l1" "d");
            not_
              (exists [ bind "l2" "L" ]
                 (conj
                    [
                      neq (attr "l2" "d") (attr "l1" "d");
                      not_
                        (exists [ bind "l3" "L" ]
                           (conj
                              [
                                eq (attr "l3" "d") (attr "l2" "d");
                                not_
                                  (exists [ bind "l4" "L" ]
                                     (conj
                                        [
                                          eq (attr "l4" "b") (attr "l3" "b");
                                          eq (attr "l4" "d") (attr "l1" "d");
                                        ]));
                              ]));
                      not_
                        (exists [ bind "l5" "L" ]
                           (conj
                              [
                                eq (attr "l5" "d") (attr "l1" "d");
                                not_
                                  (exists [ bind "l6" "L" ]
                                     (conj
                                        [
                                          eq (attr "l6" "d") (attr "l2" "d");
                                          eq (attr "l6" "b") (attr "l5" "b");
                                        ]));
                              ]));
                    ]));
          ]))

(* (23) the abstract relation Subset *)
let eq23_subset =
  define "Subset"
    (collection "Subset" [ "left"; "right" ]
       (not_
          (exists [ bind "l3" "L" ]
             (conj
                [
                  eq (attr "l3" "d") (attr "Subset" "left");
                  not_
                    (exists [ bind "l4" "L" ]
                       (conj
                          [
                            eq (attr "l4" "b") (attr "l3" "b");
                            eq (attr "l4" "d") (attr "Subset" "right");
                          ]));
                ]))))

(* (24) the unique-set query modularized through Subset *)
let eq24 =
  collection "Q" [ "d" ]
    (exists [ bind "l1" "L" ]
       (conj
          [
            eq (attr "Q" "d") (attr "l1" "d");
            not_
              (exists
                 [ bind "l2" "L"; bind "s1" "Subset"; bind "s2" "Subset" ]
                 (conj
                    [
                      neq (attr "l2" "d") (attr "l1" "d");
                      eq (attr "s1" "left") (attr "l1" "d");
                      eq (attr "s1" "right") (attr "l2" "d");
                      eq (attr "s2" "left") (attr "l2" "d");
                      eq (attr "s2" "right") (attr "l1" "d");
                    ]));
          ]))

(* (26) matrix multiplication in the named perspective *)
let eq26 =
  collection "C" [ "row"; "col"; "val" ]
    (exists
       ~grouping:[ ("a", "row"); ("b", "col") ]
       [ bind "a" "A"; bind "b" "B" ]
       (conj
          [
            eq (attr "C" "row") (attr "a" "row");
            eq (attr "C" "col") (attr "b" "col");
            eq (attr "a" "col") (attr "b" "row");
            eq (attr "C" "val") (sum (mul (attr "a" "val") (attr "b" "val")));
          ]))

(* Fig 20: multiplication reified as the external relation "*" *)
let eq26_external =
  collection "C" [ "row"; "col"; "val" ]
    (exists
       ~grouping:[ ("a", "row"); ("b", "col") ]
       [ bind "a" "A"; bind "b" "B"; bind "f" "*" ]
       (conj
          [
            eq (attr "C" "row") (attr "a" "row");
            eq (attr "C" "col") (attr "b" "col");
            eq (attr "a" "col") (attr "b" "row");
            eq (attr "f" "$1") (attr "a" "val");
            eq (attr "f" "$2") (attr "b" "val");
            eq (attr "C" "val") (sum (attr "f" "out"));
          ]))

(* (27)–(29): the count bug *)
let eq27 =
  collection "Q" [ "id" ]
    (exists [ bind "r" "R" ]
       (conj
          [
            eq (attr "Q" "id") (attr "r" "id");
            exists ~grouping:group_all [ bind "s" "S" ]
              (conj
                 [
                   eq (attr "r" "id") (attr "s" "id");
                   eq (attr "r" "q") (count (attr "s" "d"));
                 ]);
          ]))

let eq28 =
  collection "Q" [ "id" ]
    (exists
       [
         bind "r" "R";
         bind_in "x"
           (collection "X" [ "id"; "ct" ]
              (exists
                 ~grouping:[ ("s", "id") ]
                 [ bind "s" "S" ]
                 (conj
                    [
                      eq (attr "X" "id") (attr "s" "id");
                      eq (attr "X" "ct") (count (attr "s" "d"));
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "id") (attr "r" "id");
            eq (attr "r" "id") (attr "x" "id");
            eq (attr "r" "q") (attr "x" "ct");
          ]))

let eq29 =
  collection "Q" [ "id" ]
    (exists
       [
         bind "r" "R";
         bind_in "x"
           (collection "X" [ "id"; "ct" ]
              (exists
                 ~grouping:[ ("r2", "id") ]
                 ~join:(J_left (J_var "r2", J_var "s"))
                 [ bind "s" "S"; bind "r2" "R" ]
                 (conj
                    [
                      eq (attr "X" "id") (attr "r2" "id");
                      eq (attr "X" "ct") (count (attr "s" "d"));
                      eq (attr "r2" "id") (attr "s" "id");
                    ])));
       ]
       (conj
          [
            eq (attr "Q" "id") (attr "r" "id");
            eq (attr "r" "id") (attr "x" "id");
            eq (attr "r" "q") (attr "x" "ct");
          ]))

(* Section 2.7: nested vs unnested *)
let sec27_nested =
  collection "Q" [ "A" ]
    (exists [ bind "r" "R" ]
       (exists [ bind "s" "S" ]
          (conj
             [
               eq (attr "Q" "A") (attr "r" "A");
               eq (attr "r" "B") (attr "s" "B");
             ])))

let sec27_unnested =
  collection "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
          ]))

let dedup_grouping =
  collection "Q" [ "A"; "B" ]
    (exists
       ~grouping:[ ("r", "A"); ("r", "B") ]
       [ bind "r" "R" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "Q" "B") (attr "r" "B");
          ]))

(* ------------------------------------------------------------------ *)
(* SQL figure texts                                                    *)
(* ------------------------------------------------------------------ *)

let sql_fig3a =
  "select x.A, z.B from X as x join lateral (select y.A as B from Y as y \
   where x.A < y.A) as z on true"

let sql_fig4a = "select R.A, sum(R.B) sm from R group by R.A"

let sql_fig5a =
  "select distinct R.A, (select sum(R2.B) sm from R R2 where R2.A = R.A) sm \
   from R"

let sql_fig5b =
  "select distinct R.A, X.sm from R join lateral (select sum(R2.B) sm from R \
   R2 where R2.A = R.A) X on true"

let sql_fig6a =
  "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl group by \
   R.dept having sum(S.sal) > 100"

let sql_fig9a =
  "select distinct 1 as holds from R where exists (select 1 from S where \
   R.id = S.id having R.q <= count(S.d))"

let sql_fig11a = "select R.A from R where R.A not in (select S.A from S)"

let sql_fig11b =
  "select R.A from R where not exists (select 1 from S where S.A = R.A or \
   S.A is null or R.A is null)"

let sql_fig12a =
  "select R.m, S.n from R left join S on R.y = S.y and R.h = 11"

let sql_fig13a =
  "select R.A, (select sum(S.B) sm from S where S.A < R.A) sm from R"

let sql_fig13b =
  "select R.A, X.sm from R join lateral (select sum(S.B) sm from S where S.A \
   < R.A) X on true"

let sql_fig13c =
  "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A"

let sql_fig17 =
  "select distinct L1.d from L L1 where not exists (select 1 from L L2 where \
   L1.d <> L2.d and not exists (select 1 from L L3 where L3.d = L2.d and not \
   exists (select 1 from L L4 where L4.d = L1.d and L4.b = L3.b)) and not \
   exists (select 1 from L L5 where L5.d = L1.d and not exists (select 1 \
   from L L6 where L6.d = L2.d and L6.b = L5.b)))"

let sql_fig21a =
  "select R.id from R where R.q = (select count(S.d) from S where R.id = \
   S.id)"

let sql_fig21b =
  "select R.id from R, (select S.id, count(S.d) ct from S group by S.id) X \
   where R.id = X.id and R.q = X.ct"

let sql_fig21c =
  "select R.id from R, (select R2.id, count(S.d) ct from R R2 left join S on \
   R2.id = S.id group by R2.id) X where R.id = X.id and R.q = X.ct"

(* ------------------------------------------------------------------ *)
(* Soufflé texts                                                       *)
(* ------------------------------------------------------------------ *)

let souffle_eq6 = "Q(a, sm) :- R(a, _), sm = sum b : { R(a, b) }."

let souffle_eq15 = "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }."

let souffle_eq16 = "A(x, y) :- P(x, y). A(x, y) :- P(x, z), A(z, y)."
