(** Shared database instances and ARC query values for the paper catalog:
    every numbered equation of the paper as a constructed AST, plus the
    worked instances its claims are checked on. *)

open Arc_core.Ast
module Database = Arc_relation.Database

(** {1 Instances} *)

val db_rs : Database.t
(** R(A,B), S(B,C) with a join partner for A=1 only and C=0 on it. *)

val db_grouping : Database.t
(** R(A,B) = {(1,10),(1,20),(2,5)} for the grouped-aggregate examples. *)

val db_payroll : Database.t
(** R(empl,dept), S(empl,sal): d1 pays 120 total, d2 pays 50 (Fig 6). *)

val db_boolean : Database.t
(** R(id,q) = {(1,2)}, S(id,d) with three matching rows (Fig 9). *)

val db_souffle : Database.t
(** R(ak,b) = {(1,2)}, S = ∅ (Eq 15). *)

val db_parent : Database.t
(** P(s,t) chain 1→2→3→4 (Fig 10). *)

val db_nulls : Database.t
(** R(A) = {1,2}, S(A) = {1, NULL} (Fig 11). *)

val db_outer : Database.t
(** R(m,y,h), S(n,y) from the Fig 12 discussion. *)

val db_fig13 : Database.t
(** R(A) = {1,1} (duplicates!), S(A,B) = {(0,10)} (Fig 13). *)

val db_external : Database.t
(** R(A,B), S(B), T(B) for Eqs 19–21. *)

val db_beers : Database.t
(** Likes(d,b): ann/bob share a beer set, cal's is unique (Example 2). *)

val db_matrices : Database.t
(** A, B: 2×2 sparse matrices over (row, col, val) (Section 3.1). *)

val db_countbug : Database.t
(** R(id,q) = {(9,0)}, S(id,d) = ∅ (Section 3.2). *)

(** {1 ARC queries (by paper equation number)} *)

val eq1 : collection
val eq2 : collection
val eq3 : collection
val eq7 : collection
val eq8 : collection
val eq10 : collection
val eq12 : collection
val eq13 : formula
val eq14 : formula
val eq15 : collection
val eq16_defs : definition list
val eq16_main : collection
val eq17 : collection
val eq17_plain_not_exists : collection
(** Eq 17 without the explicit null checks (plain ¬∃ under 2VL). *)

val eq18 : collection
val fig13_lateral : collection
val fig13_leftjoin : collection
val eq19 : collection
val eq20 : collection
val eq21 : collection
val eq22 : collection
val eq23_subset : definition
val eq24 : collection
val eq26 : collection
val eq26_external : collection
(** Eq 26 with multiplication reified as the external relation "*"
    (Fig 20). *)

val eq27 : collection
val eq28 : collection
val eq29 : collection

val sec27_nested : collection
val sec27_unnested : collection
val dedup_grouping : collection

(** {1 SQL texts (by paper figure)} *)

val sql_fig3a : string
val sql_fig4a : string
val sql_fig5a : string
val sql_fig5b : string
val sql_fig6a : string
val sql_fig9a : string
val sql_fig11a : string
val sql_fig11b : string
val sql_fig12a : string
val sql_fig13a : string
val sql_fig13b : string
val sql_fig13c : string
val sql_fig17 : string
val sql_fig21a : string
val sql_fig21b : string
val sql_fig21c : string

val souffle_eq6 : string
val souffle_eq15 : string
val souffle_eq16 : string
