lib/catalog/data.mli: Arc_core Arc_relation
