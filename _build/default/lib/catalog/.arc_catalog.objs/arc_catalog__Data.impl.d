lib/catalog/data.ml: Arc_core Arc_relation Arc_value List
