lib/catalog/catalog.ml: Arc_alt Arc_core Arc_datalog Arc_engine Arc_higraph Arc_intent Arc_relation Arc_rellang Arc_sql Arc_syntax Arc_trc Arc_value Data List Printf String
