lib/catalog/catalog.mli:
