lib/engine/externals.ml: Arc_core Arc_value List
