lib/engine/eval.ml: Arc_core Arc_relation Arc_value Array Externals Hashtbl List Option Printf String
