lib/engine/externals.mli: Arc_core Arc_value
