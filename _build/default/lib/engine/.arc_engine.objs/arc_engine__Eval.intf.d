lib/engine/eval.mli: Arc_core Arc_relation Arc_value Externals
