module A = Arc_core.Ast
module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate

type rterm = R_var of string | R_const of V.t

type ratom = { rel : string; args : rterm list }

type rcond =
  | RC_atom of ratom
  | RC_cmp of A.cmp_op * rterm * rterm
  | RC_agg of string * Aggregate.kind * string list * ratom list

type rdef = { def_name : string; params : string list; conds : rcond list }

exception Embed_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Embed_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rterm_to_string = function
  | R_var v -> v
  | R_const c -> V.to_string c

let ratom_to_string a =
  Printf.sprintf "%s(%s)" a.rel
    (String.concat ", " (List.map rterm_to_string a.args))

let agg_name = function
  | Aggregate.Avg -> "average"
  | k -> Aggregate.kind_to_string k

let rcond_to_string = function
  | RC_atom a -> ratom_to_string a
  | RC_cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (rterm_to_string l) (A.cmp_op_to_string op)
        (rterm_to_string r)
  | RC_agg (v, k, projected, body) ->
      Printf.sprintf "%s = %s[(%s) : %s]" v (agg_name k)
        (String.concat ", " projected)
        (String.concat " and " (List.map ratom_to_string body))

let to_string d =
  Printf.sprintf "def %s(%s) :\n    %s" d.def_name
    (String.concat ", " d.params)
    (String.concat " and\n    " (List.map rcond_to_string d.conds))

(* ------------------------------------------------------------------ *)
(* Embedding into ARC                                                  *)
(* ------------------------------------------------------------------ *)

let atom_vars a =
  List.filter_map (function R_var v -> Some v | R_const _ -> None) a.args

let cond_vars = function
  | RC_atom a -> atom_vars a
  | RC_cmp (_, l, r) ->
      List.filter_map (function R_var v -> Some v | _ -> None) [ l; r ]
  | RC_agg (v, _, _, _) -> [ v ]

(* bind one atom in the named perspective *)
let bind_atom ~schemas counter renv (a : ratom) =
  let attrs =
    match List.assoc_opt a.rel schemas with
    | Some attrs -> attrs
    | None -> fail "no schema for relation %S" a.rel
  in
  if List.length attrs <> List.length a.args then
    fail "arity mismatch for %S" a.rel;
  incr counter;
  let var = Printf.sprintf "%s%d" (String.lowercase_ascii a.rel) !counter in
  let preds = ref [] in
  let renv' =
    List.fold_left2
      (fun renv arg attr ->
        match arg with
        | R_const c ->
            preds :=
              !preds @ [ A.Pred (A.Cmp (A.Eq, A.Attr (var, attr), A.Const c)) ];
            renv
        | R_var v -> (
            match List.assoc_opt v renv with
            | Some t ->
                preds :=
                  !preds @ [ A.Pred (A.Cmp (A.Eq, A.Attr (var, attr), t)) ];
                renv
            | None -> (v, A.Attr (var, attr)) :: renv))
      renv a.args attrs
  in
  ({ A.var; source = A.Base a.rel }, !preds, renv')

let to_arc ~schemas (d : rdef) : A.collection =
  let counter = ref 0 in
  let aggs =
    List.filter_map (function RC_agg _ as c -> Some c | _ -> None) d.conds
  in
  let atoms =
    List.filter_map (function RC_atom a -> Some a | _ -> None) d.conds
  in
  let cmps =
    List.filter_map (function RC_cmp (o, l, r) -> Some (o, l, r) | _ -> None) d.conds
  in
  (* variables visible outside each aggregate *)
  let outer_vars =
    d.params
    @ List.concat_map atom_vars atoms
    @ List.concat_map
        (function RC_cmp (_, l, r) ->
            List.filter_map (function R_var v -> Some v | _ -> None) [ l; r ]
          | _ -> [])
        d.conds
  in
  (* one nested collection per aggregate: the Fig 8 / Eq 12 pattern *)
  let nested =
    List.map
      (function
        | RC_agg (res_var, kind, projected, body) ->
            let body_vars = List.concat_map atom_vars body in
            let grouping_vars =
              List.sort_uniq compare
                (List.filter
                   (fun v ->
                     List.mem v outer_vars && not (List.mem v projected))
                   body_vars)
            in
            let target =
              match List.rev projected with
              | last :: _ -> last
              | [] -> fail "aggregate with no projected variables"
            in
            incr counter;
            let head = Printf.sprintf "Y%d" !counter in
            let bindings, preds, renv =
              List.fold_left
                (fun (bs, ps, renv) a ->
                  let b, ps', renv' = bind_atom ~schemas counter renv a in
                  (bs @ [ b ], ps @ ps', renv'))
                ([], [], []) body
            in
            let repr v =
              match List.assoc_opt v renv with
              | Some t -> t
              | None -> fail "aggregate body does not bind %S" v
            in
            let keys =
              List.map
                (fun g ->
                  match repr g with
                  | A.Attr (bv, attr) -> (bv, attr)
                  | _ -> fail "grouping variable %S is not an attribute" g)
                grouping_vars
            in
            let assigns =
              List.map
                (fun g ->
                  A.Pred (A.Cmp (A.Eq, A.Attr (head, g), repr g)))
                grouping_vars
              @ [
                  A.Pred
                    (A.Cmp
                       ( A.Eq,
                         A.Attr (head, "res"),
                         A.Agg (kind, repr target) ));
                ]
            in
            ( res_var,
              grouping_vars,
              {
                A.head = { head_name = head; head_attrs = grouping_vars @ [ "res" ] };
                body =
                  A.Exists
                    {
                      bindings;
                      grouping = Some keys;
                      join = None;
                      body = A.And (preds @ assigns);
                    };
              } )
        | _ -> assert false)
      aggs
  in
  (* outer scope *)
  let bindings, preds, renv =
    List.fold_left
      (fun (bs, ps, renv) a ->
        let b, ps', renv' = bind_atom ~schemas counter renv a in
        (bs @ [ b ], ps @ ps', renv'))
      ([], [], []) atoms
  in
  let bindings, preds, renv =
    List.fold_left
      (fun (bs, ps, renv) (res_var, grouping_vars, coll) ->
        incr counter;
        let x = Printf.sprintf "x%d" !counter in
        let ps' =
          List.filter_map
            (fun g ->
              match List.assoc_opt g renv with
              | Some t -> Some (A.Pred (A.Cmp (A.Eq, A.Attr (x, g), t)))
              | None -> None)
            grouping_vars
        in
        let renv' =
          List.fold_left
            (fun renv g ->
              if List.mem_assoc g renv then renv
              else (g, A.Attr (x, g)) :: renv)
            renv grouping_vars
        in
        let renv' =
          if List.mem_assoc res_var renv' then renv'
          else (res_var, A.Attr (x, "res")) :: renv'
        in
        (bs @ [ { A.var = x; source = A.Nested coll } ], ps @ ps', renv'))
      (bindings, preds, renv)
      nested
  in
  let term_of = function
    | R_const c -> A.Const c
    | R_var v -> (
        match List.assoc_opt v renv with
        | Some t -> t
        | None -> fail "variable %S not grounded" v)
  in
  let cmp_preds =
    List.map
      (fun (op, l, r) -> A.Pred (A.Cmp (op, term_of l, term_of r)))
      cmps
  in
  let head_assigns =
    List.map
      (fun p ->
        A.Pred (A.Cmp (A.Eq, A.Attr (d.def_name, p), term_of (R_var p))))
      d.params
  in
  {
    A.head = { head_name = d.def_name; head_attrs = d.params };
    body =
      A.Exists
        {
          bindings;
          grouping = None;
          join = None;
          body = A.And (preds @ cmp_preds @ head_assigns);
        };
  }

(* ------------------------------------------------------------------ *)
(* Paper examples                                                      *)
(* ------------------------------------------------------------------ *)

let paper_single_agg =
  {
    def_name = "Q";
    params = [ "a"; "sm" ];
    conds =
      [
        RC_agg
          ( "sm",
            Aggregate.Sum,
            [ "b" ],
            [ { rel = "R"; args = [ R_var "a"; R_var "b" ] } ] );
      ];
  }

let paper_eq11 =
  {
    def_name = "Q";
    params = [ "d"; "av" ];
    conds =
      [
        RC_agg
          ( "av",
            Aggregate.Avg,
            [ "e"; "s" ],
            [
              { rel = "R"; args = [ R_var "e"; R_var "d" ] };
              { rel = "S"; args = [ R_var "e"; R_var "s" ] };
            ] );
        RC_agg
          ( "sm",
            Aggregate.Sum,
            [ "e"; "s" ],
            [
              { rel = "R"; args = [ R_var "e"; R_var "d" ] };
              { rel = "S"; args = [ R_var "e"; R_var "s" ] };
            ] );
        RC_cmp (A.Gt, R_var "sm", R_const (V.Int 100));
      ];
  }
