(** A Rel-style frontend (paper, Sections 2.5, 3.1; Eqs 11, 25).

    Rel [8] works in the domain (positional) perspective: everything is a
    relation, atoms apply relation names to variables, and aggregation is
    variable elimination — [sum[(b) : R(a, b)]] sums [b] over the solutions
    of the bracketed body for each fixed [a] (FIO with grouped attributes
    returned, but each aggregate in its own scope — the Fig 8 pattern).

    This module models the fragment the paper discusses: conjunctive bodies
    with per-aggregate subscopes, and embeds it into ARC in the named
    perspective (requiring attribute names for each relation). *)

type rterm = R_var of string | R_const of Arc_value.Value.t

type ratom = { rel : string; args : rterm list }

type rcond =
  | RC_atom of ratom
  | RC_cmp of Arc_core.Ast.cmp_op * rterm * rterm
  | RC_agg of string * Arc_value.Aggregate.kind * string list * ratom list
      (** [RC_agg (v, kind, projected, body)]:
          [v = kind[(projected…) : body]] — the aggregate is taken over the
          {e last} projected variable; the body's other free variables that
          also occur outside act as grouping parameters. *)

type rdef = { def_name : string; params : string list; conds : rcond list }

val to_string : rdef -> string
(** Rel-ish concrete syntax, e.g.
    [def Q(a, sm): sm = sum[(b) : R(a, b)]]. *)

exception Embed_error of string

val to_arc :
  schemas:(string * string list) list -> rdef -> Arc_core.Ast.collection
(** Named-perspective ARC embedding: each aggregate becomes its own
    (possibly nested) collection scope, reproducing the relational pattern
    of Fig 8 / Eq 12. Raises {!Embed_error} when a relation's schema is
    missing or arities mismatch. *)

val paper_eq11 : rdef
(** The multiple-aggregates example written in Rel (Eq 11):
    [def Q(d, av): av = average[(e,s): R(e,d) and S(e,s)] and
     sum[(e,s): R(e,d) and S(e,s)] > 100] — represented with an auxiliary
    result variable for the sum. *)

val paper_single_agg : rdef
(** Eq: [def Q(a, sm): sm = sum[(b) : R(a, b)]] (Section 2.5). *)
