lib/rellang/rel.mli: Arc_core Arc_value
