lib/rellang/rel.ml: Arc_core Arc_value List Printf String
