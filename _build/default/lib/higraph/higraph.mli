(** The diagrammatic higraph modality (paper, Sections 1, 2.2; Figs 2b, 4b,
    6c, 7, 8, 12, 20, 21).

    Higraphs [Harel 1988] combine containment (nodes nested in nodes — here,
    lexical scopes as regions) with link edges (here, join/comparison
    predicates connecting table attributes). This module builds a diagram
    model from an ARC query — a variant of Relational Diagrams [28–30] — and
    renders it as nested ASCII boxes or Graphviz DOT.

    Diagram conventions, following the paper:
    {ul
    {- every quantifier scope is a region; grouping scopes have double-lined
       borders and their grouping-key attributes are marked with [*];}
    {- negation scopes are regions labeled [¬];}
    {- each binding is a table box listing the attributes the query uses;
       single-attribute selections ([s.C = 0]) annotate the attribute line;}
    {- binary predicates are edges between attribute anchors; assignment
       predicates (paper: "visually decorated") render as [←] annotations on
       the head table and dashed edges in DOT;}
    {- the optional side of an outer join is marked with an empty circle [○]
       (Fig 12);}
    {- abstract relations can be {e collapsed} into module boxes
       (Section 2.13.2).}} *)

open Arc_core.Ast

type region_kind =
  | Canvas
  | Existential
  | Negation
  | Grouping_region of string  (** rendered key list *)
  | Nested_collection of var  (** region of a nested comprehension binding *)
  | Disjunct of int
  | Module_box of rel_name  (** collapsed abstract relation *)

type table = {
  t_id : int;
  t_title : string;  (** e.g. ["r ∈ R"] or ["Q (result)"] *)
  t_attrs : (string * string list) list;
      (** attribute name, annotation strings (selections, assignments,
          grouping-key marks, edge anchors) *)
  t_optional : bool;  (** NULL-padded side of an outer join (○ mark) *)
}

type region = {
  r_id : int;
  r_kind : region_kind;
  r_tables : table list;
  r_subregions : region list;
  r_notes : string list;
      (** predicates that are not attribute-to-attribute edges *)
}

type edge = {
  e_id : int;
  e_src : int * string;  (** table id, attribute *)
  e_dst : int * string;
  e_label : string;  (** comparison operator *)
  e_assign : bool;
}

type t = { root : region; edges : edge list }

val of_query : ?collapse:rel_name list -> ?defs:definition list -> query -> t
(** Builds the diagram. [collapse] lists defined relations to draw as
    module boxes instead of expanding their bindings; [defs] supplies their
    definitions for the expanded rendering of everything else. *)

val of_collection : collection -> t

val render : t -> string
(** Nested ASCII boxes; edges appear as [⟨n⟩] anchors on attribute lines
    with a legend below the diagram. *)

val to_dot : t -> string
(** Graphviz: regions as clusters, tables as record nodes with ports,
    predicates as (dashed, for assignments) labeled edges. *)

type stats = {
  n_regions : int;
  n_tables : int;
  n_edges : int;
  n_notes : int;
  max_nesting : int;
}

val stats : t -> stats
(** Size metrics used by the modality-complexity bench (proxy for the user
    studies the paper cites). *)
