open Arc_core.Ast
module Pp = Arc_core.Pp
module V = Arc_value.Value

type region_kind =
  | Canvas
  | Existential
  | Negation
  | Grouping_region of string
  | Nested_collection of var
  | Disjunct of int
  | Module_box of rel_name

type table = {
  t_id : int;
  t_title : string;
  t_attrs : (string * string list) list;
  t_optional : bool;
}

type region = {
  r_id : int;
  r_kind : region_kind;
  r_tables : table list;
  r_subregions : region list;
  r_notes : string list;
}

type edge = {
  e_id : int;
  e_src : int * string;
  e_dst : int * string;
  e_label : string;
  e_assign : bool;
}

type t = { root : region; edges : edge list }

type stats = {
  n_regions : int;
  n_tables : int;
  n_edges : int;
  n_notes : int;
  max_nesting : int;
}

(* ------------------------------------------------------------------ *)
(* Builder state                                                       *)
(* ------------------------------------------------------------------ *)

type tstate = {
  mutable attrs : (string * string list) list;
  mutable optional : bool;
  title : string;
}

type bstate = {
  mutable next : int;
  tables : (int, tstate) Hashtbl.t;
  mutable edges : edge list;
  mutable edge_next : int;
  collapse : rel_name list;
}

let fresh st =
  let id = st.next in
  st.next <- id + 1;
  id

let new_table st title =
  let id = fresh st in
  Hashtbl.replace st.tables id { attrs = []; optional = false; title };
  id

let touch_attr st tid a =
  let ts = Hashtbl.find st.tables tid in
  if not (List.mem_assoc a ts.attrs) then ts.attrs <- ts.attrs @ [ (a, []) ]

let annotate st tid a note =
  touch_attr st tid a;
  let ts = Hashtbl.find st.tables tid in
  ts.attrs <-
    List.map
      (fun (a', notes) -> if a' = a then (a', notes @ [ note ]) else (a', notes))
      ts.attrs

let mark_optional st tid =
  let ts = Hashtbl.find st.tables tid in
  ts.optional <- true

let add_edge st (t1, a1) (t2, a2) label assign =
  touch_attr st t1 a1;
  touch_attr st t2 a2;
  let e =
    {
      e_id = st.edge_next;
      e_src = (t1, a1);
      e_dst = (t2, a2);
      e_label = label;
      e_assign = assign;
    }
  in
  st.edge_next <- st.edge_next + 1;
  st.edges <- st.edges @ [ e ]

(* environment: variable/head name -> table id *)
type benv = { vars : (string * int) list; heads : (string * int) list }

let resolve env v =
  match List.assoc_opt v env.vars with
  | Some id -> Some id
  | None -> List.assoc_opt v env.heads

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let is_head env v = List.mem_assoc v env.heads

(* Process one predicate: an attribute-to-attribute comparison becomes an
   edge; a single-attribute selection becomes an annotation; anything else
   becomes a textual note in the region. Returns the notes produced. *)
let process_pred st env p : string list =
  match p with
  | Cmp (op, Attr (v1, a1), Attr (v2, a2)) -> (
      match (resolve env v1, resolve env v2) with
      | Some t1, Some t2 ->
          let assign = is_head env v1 || is_head env v2 in
          (* orient assignment edges so the head attribute is the source *)
          let (t1, a1), (t2, a2), op =
            if is_head env v2 then ((t2, a2), (t1, a1), cmp_op_flip op)
            else ((t1, a1), (t2, a2), op)
          in
          add_edge st (t1, a1) (t2, a2) (cmp_op_to_string op) assign;
          []
      | _ -> [ Pp.pred p ])
  | Cmp (op, Attr (v, a), Const c) -> (
      match resolve env v with
      | Some tid ->
          annotate st tid a (cmp_op_to_string op ^ " " ^ V.to_string c);
          []
      | None -> [ Pp.pred p ])
  | Cmp (op, Const c, Attr (v, a)) -> (
      match resolve env v with
      | Some tid ->
          annotate st tid a
            (cmp_op_to_string (cmp_op_flip op) ^ " " ^ V.to_string c);
          []
      | None -> [ Pp.pred p ])
  | Cmp (_, Attr (v, a), t) when term_has_agg t && resolve env v <> None ->
      (* aggregation predicate: decorate the target attribute *)
      let tid = Option.get (resolve env v) in
      annotate st tid a
        ((if is_head env v then "\xe2\x86\x90 " else "") ^ Pp.term t);
      (* also touch the aggregated attributes *)
      List.iter
        (fun (v', a') ->
          match resolve env v' with
          | Some tid' -> touch_attr st tid' a'
          | None -> ())
        (term_vars t);
      []
  | Is_null (Attr (v, a)) when resolve env v <> None ->
      annotate st (Option.get (resolve env v)) a "is null";
      []
  | Not_null (Attr (v, a)) when resolve env v <> None ->
      annotate st (Option.get (resolve env v)) a "is not null";
      []
  | Like (Attr (v, a), pat) when resolve env v <> None ->
      annotate st (Option.get (resolve env v)) a ("like '" ^ pat ^ "'");
      []
  | p ->
      (* touch referenced attributes so the tables show them *)
      List.iter
        (fun t ->
          List.iter
            (fun (v, a) ->
              match resolve env v with
              | Some tid -> touch_attr st tid a
              | None -> ())
            (term_vars t))
        (pred_terms p);
      [ Pp.pred p ]

(* ------------------------------------------------------------------ *)
(* Regions                                                             *)
(* ------------------------------------------------------------------ *)

let rec optional_vars = function
  | J_var _ | J_lit _ -> []
  | J_inner l -> List.concat_map optional_vars l
  | J_left (a, b) -> optional_vars a @ join_tree_vars b
  | J_full (a, b) -> join_tree_vars a @ join_tree_vars b

let rec build_scope st env ~defs scope : region * benv =
  let kind =
    match scope.grouping with
    | Some [] -> Grouping_region "\xe2\x88\x85"
    | Some keys ->
        Grouping_region
          (String.concat ", " (List.map (fun (v, a) -> v ^ "." ^ a) keys))
    | None -> Existential
  in
  let rid = fresh st in
  (* bindings become tables or nested regions *)
  let env', tables, subregions =
    List.fold_left
      (fun (env, tabs, subs) b ->
        match b.source with
        | Base rel when List.mem rel st.collapse ->
            let tid =
              new_table st
                (Printf.sprintf "%s \xe2\x88\x88 %s \xe3\x80\x9amodule\xe3\x80\x9b" b.var rel)
            in
            ({ env with vars = (b.var, tid) :: env.vars }, tabs @ [ tid ], subs)
        | Base rel ->
            let tid = new_table st (b.var ^ " \xe2\x88\x88 " ^ rel) in
            ({ env with vars = (b.var, tid) :: env.vars }, tabs @ [ tid ], subs)
        | Nested c ->
            let sub, head_tid =
              build_collection_region st env ~defs
                ~kind:(Nested_collection b.var) c
            in
            ({ env with vars = (b.var, head_tid) :: env.vars }, tabs, subs @ [ sub ]))
      (env, [], []) scope.bindings
  in
  (* outer-join optionality *)
  (match scope.join with
  | Some jt ->
      List.iter
        (fun v ->
          match List.assoc_opt v env'.vars with
          | Some tid -> mark_optional st tid
          | None -> ())
        (optional_vars jt)
  | None -> ());
  (* grouping keys marked on their tables *)
  (match scope.grouping with
  | Some keys ->
      List.iter
        (fun (v, a) ->
          match resolve env' v with
          | Some tid -> annotate st tid a "*"
          | None -> ())
        keys
  | None -> ());
  let notes, subs2 = build_body st env' ~defs scope.body in
  let join_note =
    match scope.join with
    | Some jt -> [ "join: " ^ Pp.join_tree jt ]
    | None -> []
  in
  ( {
      r_id = rid;
      r_kind = kind;
      r_tables = tables |> List.map (fun tid -> finish_table st tid);
      r_subregions = subregions @ subs2;
      r_notes = join_note @ notes;
    },
    env' )

and finish_table st tid =
  let ts = Hashtbl.find st.tables tid in
  { t_id = tid; t_title = ts.title; t_attrs = ts.attrs; t_optional = ts.optional }

and build_body st env ~defs f : string list * region list =
  match f with
  | True -> ([], [])
  | Pred p -> (process_pred st env p, [])
  | And fs ->
      List.fold_left
        (fun (notes, subs) g ->
          let n, s = build_body st env ~defs g in
          (notes @ n, subs @ s))
        ([], []) fs
  | Or fs ->
      let subs =
        List.mapi
          (fun i g ->
            let rid = fresh st in
            let notes, inner = build_body st env ~defs g in
            {
              r_id = rid;
              r_kind = Disjunct (i + 1);
              r_tables = [];
              r_subregions = inner;
              r_notes = notes;
            })
          fs
      in
      ([], subs)
  | Not g ->
      let rid = fresh st in
      let notes, inner = build_body st env ~defs g in
      ( [],
        [
          {
            r_id = rid;
            r_kind = Negation;
            r_tables = [];
            r_subregions = inner;
            r_notes = notes;
          };
        ] )
  | Exists scope ->
      let region, _ = build_scope st env ~defs scope in
      ([], [ region ])

and build_collection_region st env ~defs ~kind c : region * int =
  (* result (head) table plus the body structure *)
  let head_tid =
    new_table st (Pp.head c.head ^ (match kind with
      | Canvas -> " (result)"
      | _ -> ""))
  in
  List.iter (fun a -> touch_attr st head_tid a) c.head.head_attrs;
  let env' = { vars = env.vars; heads = [ (c.head.head_name, head_tid) ] } in
  let rid = fresh st in
  let notes, subs = build_body st env' ~defs c.body in
  ( {
      r_id = rid;
      r_kind = kind;
      r_tables = [ finish_table st head_tid ];
      r_subregions = subs;
      r_notes = notes;
    },
    head_tid )

(* Rebuild table contents after the whole walk (annotations accumulate). *)
let rec refresh_tables st region =
  {
    region with
    r_tables = List.map (fun t -> finish_table st t.t_id) region.r_tables;
    r_subregions = List.map (refresh_tables st) region.r_subregions;
  }

let of_query ?(collapse = []) ?(defs = []) q =
  let st =
    {
      next = 0;
      tables = Hashtbl.create 16;
      edges = [];
      edge_next = 1;
      collapse;
    }
  in
  let env = { vars = []; heads = [] } in
  let root =
    match q with
    | Coll c ->
        let region, _ = build_collection_region st env ~defs ~kind:Canvas c in
        region
    | Sentence f ->
        let rid = fresh st in
        let notes, subs = build_body st env ~defs f in
        {
          r_id = rid;
          r_kind = Canvas;
          r_tables = [];
          r_subregions = subs;
          r_notes = notes;
        }
  in
  let root = refresh_tables st root in
  { root; edges = st.edges }

let of_collection c = of_query (Coll c)

(* ------------------------------------------------------------------ *)
(* ASCII rendering                                                     *)
(* ------------------------------------------------------------------ *)

(* UTF-8-aware display width (all our chars are width-1). *)
let uwidth s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xe0 then 2
        else if c < 0xf0 then 3
        else 4
      in
      go (i + step) (acc + 1)
  in
  go 0 0

let pad_to w s = s ^ String.make (max 0 (w - uwidth s)) ' '

let render (t : t) =
  let anchors (tid, a) =
    List.filter_map
      (fun e ->
        if e.e_src = (tid, a) || e.e_dst = (tid, a) then
          Some (Printf.sprintf "\xe2\x9f\xa8%d\xe2\x9f\xa9" e.e_id)
        else None)
      t.edges
  in
  let render_table tb : string list =
    let title =
      (if tb.t_optional then "\xe2\x97\x8b " else "") ^ tb.t_title
    in
    let attr_lines =
      List.map
        (fun (a, notes) ->
          let marks = anchors (tb.t_id, a) in
          String.concat " " ((a :: notes) @ marks))
        tb.t_attrs
    in
    let w =
      List.fold_left (fun acc l -> max acc (uwidth l)) (uwidth title) attr_lines
    in
    let top = "\xe2\x94\x8c" ^ String.concat "" (List.init (w + 2) (fun _ -> "\xe2\x94\x80")) ^ "\xe2\x94\x90" in
    let bot = "\xe2\x94\x94" ^ String.concat "" (List.init (w + 2) (fun _ -> "\xe2\x94\x80")) ^ "\xe2\x94\x98" in
    let line l = "\xe2\x94\x82 " ^ pad_to w l ^ " \xe2\x94\x82" in
    (top :: line title
     :: (if attr_lines = [] then [] else List.map line attr_lines))
    @ [ bot ]
  in
  let region_title r =
    match r.r_kind with
    | Canvas -> ""
    | Existential -> "\xe2\x88\x83"
    | Negation -> "\xc2\xac"
    | Grouping_region keys -> "\xce\xb3 " ^ keys
    | Nested_collection v -> v ^ " \xe2\x88\x88"
    | Disjunct i -> Printf.sprintf "\xe2\x88\xa8%d" i
    | Module_box n -> "module " ^ n
  in
  let rec render_region r : string list =
    let inner =
      List.concat_map render_table r.r_tables
      @ List.map (fun n -> "\xc2\xb7 " ^ n) r.r_notes
      @ List.concat_map render_region r.r_subregions
    in
    match r.r_kind with
    | Canvas -> inner
    | _ ->
        let double =
          match r.r_kind with Grouping_region _ -> true | _ -> false
        in
        let h, v, tl, tr, bl, br =
          if double then
            ( "\xe2\x95\x90", "\xe2\x95\x91", "\xe2\x95\x94", "\xe2\x95\x97",
              "\xe2\x95\x9a", "\xe2\x95\x9d" )
          else
            ( "\xe2\x94\x80", "\xe2\x94\x82", "\xe2\x94\x8c", "\xe2\x94\x90",
              "\xe2\x94\x94", "\xe2\x94\x98" )
        in
        let w =
          List.fold_left (fun acc l -> max acc (uwidth l)) 0 inner
          |> max (uwidth (region_title r) + 2)
        in
        let title = region_title r in
        let top =
          tl ^ h ^ title
          ^ String.concat ""
              (List.init (max 0 (w + 1 - uwidth title)) (fun _ -> h))
          ^ tr
        in
        let bot =
          bl ^ String.concat "" (List.init (w + 2) (fun _ -> h)) ^ br
        in
        (top :: List.map (fun l -> v ^ " " ^ pad_to w l ^ " " ^ v) inner)
        @ [ bot ]
  in
  let body = String.concat "\n" (render_region t.root) in
  let table_names = Hashtbl.create 16 in
  let rec collect r =
    List.iter
      (fun tb ->
        let name =
          match String.index_opt tb.t_title ' ' with
          | Some i -> String.sub tb.t_title 0 i
          | None -> tb.t_title
        in
        let name =
          match String.index_opt name '(' with
          | Some i -> String.sub name 0 i
          | None -> name
        in
        Hashtbl.replace table_names tb.t_id name)
      r.r_tables;
    List.iter collect r.r_subregions
  in
  collect t.root;
  let endpoint (tid, a) =
    match Hashtbl.find_opt table_names tid with
    | Some n -> n ^ "." ^ a
    | None -> a
  in
  let legend =
    if t.edges = [] then ""
    else
      "\nedges:\n"
      ^ String.concat "\n"
          (List.map
             (fun e ->
               Printf.sprintf "  \xe2\x9f\xa8%d\xe2\x9f\xa9 %s %s %s%s" e.e_id
                 (endpoint e.e_src) e.e_label (endpoint e.e_dst)
                 (if e.e_assign then "  (assignment)" else ""))
             t.edges)
  in
  body ^ legend

(* ------------------------------------------------------------------ *)
(* DOT export                                                          *)
(* ------------------------------------------------------------------ *)

let dot_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '<' -> "&lt;" | '>' -> "&gt;" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot (t : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph arc {\n  compound=true;\n  rankdir=LR;\n  node [shape=record, fontsize=10];\n";
  let port a =
    (* graphviz port names must be alphanumeric *)
    "p" ^ String.concat "" (List.map (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> String.make 1 c
      | _ -> "_") (List.init (String.length a) (String.get a)))
  in
  let rec region r =
    match r.r_kind with
    | Canvas ->
        List.iter table r.r_tables;
        List.iter region r.r_subregions;
        notes r
    | _ ->
        Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" r.r_id);
        let label, style =
          match r.r_kind with
          | Negation -> ("\xc2\xac", "solid")
          | Grouping_region keys -> ("\xce\xb3 " ^ keys, "bold")
          | Nested_collection v -> (v ^ " \xe2\x88\x88", "dashed")
          | Disjunct i -> (Printf.sprintf "\xe2\x88\xa8%d" i, "dotted")
          | Module_box n -> ("module " ^ n, "filled")
          | Existential -> ("\xe2\x88\x83", "solid")
          | Canvas -> ("", "solid")
        in
        Buffer.add_string buf
          (Printf.sprintf "    label=\"%s\"; style=%s;\n" (dot_escape label) style);
        List.iter table r.r_tables;
        List.iter region r.r_subregions;
        notes r;
        Buffer.add_string buf "  }\n"
  and table tb =
    let attrs =
      String.concat "|"
        (List.map
           (fun (a, ns) ->
             Printf.sprintf "<%s> %s %s" (port a) (dot_escape a)
               (dot_escape (String.concat " " ns)))
           tb.t_attrs)
    in
    Buffer.add_string buf
      (Printf.sprintf "    n%d [label=\"{%s%s%s}\"];\n" tb.t_id
         (dot_escape tb.t_title)
         (if tb.t_optional then " \xe2\x97\x8b" else "")
         (if attrs = "" then "" else "|" ^ attrs))
  and notes r =
    List.iteri
      (fun i n ->
        Buffer.add_string buf
          (Printf.sprintf
             "    note_%d_%d [shape=note, label=\"%s\", fontsize=9];\n" r.r_id i
             (dot_escape n)))
      r.r_notes
  in
  region t.root;
  List.iter
    (fun e ->
      let t1, a1 = e.e_src and t2, a2 = e.e_dst in
      Buffer.add_string buf
        (Printf.sprintf "  n%d:%s -> n%d:%s [label=\"%s\"%s, dir=none];\n" t1
           (port a1) t2 (port a2) (dot_escape e.e_label)
           (if e.e_assign then ", style=dashed" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let stats (t : t) =
  let rec go depth r =
    let sub = List.map (go (depth + 1)) r.r_subregions in
    List.fold_left
      (fun acc s ->
        {
          n_regions = acc.n_regions + s.n_regions;
          n_tables = acc.n_tables + s.n_tables;
          n_edges = 0;
          n_notes = acc.n_notes + s.n_notes;
          max_nesting = max acc.max_nesting s.max_nesting;
        })
      {
        n_regions = 1;
        n_tables = List.length r.r_tables;
        n_edges = 0;
        n_notes = List.length r.r_notes;
        max_nesting = depth;
      }
      sub
  in
  let s = go 0 t.root in
  { s with n_edges = List.length t.edges }
