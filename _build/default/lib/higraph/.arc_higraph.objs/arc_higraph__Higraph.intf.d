lib/higraph/higraph.mli: Arc_core
