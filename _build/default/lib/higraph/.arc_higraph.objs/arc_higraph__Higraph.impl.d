lib/higraph/higraph.ml: Arc_core Arc_value Buffer Char Hashtbl List Option Printf String
