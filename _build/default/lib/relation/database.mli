(** A database instance: a finite map from relation names to base relations
    (the extensional database, EDB in the paper's Fig 14 taxonomy). *)

type t

exception Unknown_relation of string

val empty : t
val of_list : (string * Relation.t) list -> t
val add : t -> string -> Relation.t -> t
val find : t -> string -> Relation.t
(** Raises {!Unknown_relation}. *)

val find_opt : t -> string -> Relation.t option
val mem : t -> string -> bool
val names : t -> string list
val pp : Format.formatter -> t -> unit
