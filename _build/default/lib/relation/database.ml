module M = Map.Make (String)

type t = Relation.t M.t

exception Unknown_relation of string

let empty = M.empty
let add t name r = M.add name r t
let of_list l = List.fold_left (fun acc (n, r) -> add acc n r) empty l

let find t name =
  match M.find_opt name t with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let find_opt t name = M.find_opt name t
let mem t name = M.mem name t
let names t = List.map fst (M.bindings t)

let pp fmt t =
  M.iter
    (fun n r ->
      Format.fprintf fmt "%s =@.%s@." n (Relation.to_table r))
    t
