lib/relation/database.ml: Format List Map Relation String
