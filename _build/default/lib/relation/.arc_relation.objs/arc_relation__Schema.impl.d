lib/relation/schema.ml: Format Hashtbl List String
