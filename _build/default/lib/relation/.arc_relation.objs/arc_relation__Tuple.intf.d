lib/relation/tuple.mli: Arc_value Format Schema
