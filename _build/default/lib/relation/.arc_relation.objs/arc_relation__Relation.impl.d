lib/relation/relation.ml: Arc_value Array Format Hashtbl List Option Printf Schema String Tuple
