lib/relation/tuple.ml: Arc_value Array Format List Schema Stdlib String
