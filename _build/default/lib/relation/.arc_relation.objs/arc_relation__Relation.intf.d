lib/relation/relation.mli: Arc_value Format Schema Tuple
