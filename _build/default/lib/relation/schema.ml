type t = { names : string list; idx : (string, int) Hashtbl.t }

exception Duplicate_attribute of string
exception Unknown_attribute of string

let make names =
  let idx = Hashtbl.create (List.length names) in
  List.iteri
    (fun i n ->
      if Hashtbl.mem idx n then raise (Duplicate_attribute n)
      else Hashtbl.add idx n i)
    names;
  { names; idx }

let attrs t = t.names
let arity t = List.length t.names
let mem t n = Hashtbl.mem t.idx n

let index t n =
  match Hashtbl.find_opt t.idx n with
  | Some i -> i
  | None -> raise (Unknown_attribute n)

let equal t1 t2 = t1.names = t2.names

let equal_names t1 t2 =
  List.sort compare t1.names = List.sort compare t2.names

let union t1 t2 = make (t1.names @ t2.names)

let project t names =
  List.iter (fun n -> if not (mem t n) then raise (Unknown_attribute n)) names;
  make names

let to_string t = "(" ^ String.concat ", " t.names ^ ")"
let pp fmt t = Format.pp_print_string fmt (to_string t)
