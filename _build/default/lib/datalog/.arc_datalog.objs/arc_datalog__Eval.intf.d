lib/datalog/eval.mli: Arc_relation Ast
