lib/datalog/parse.mli: Ast
