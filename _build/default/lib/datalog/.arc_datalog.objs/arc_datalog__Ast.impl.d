lib/datalog/ast.ml: Arc_core Arc_value List Printf String
