lib/datalog/ast.mli: Arc_core Arc_value
