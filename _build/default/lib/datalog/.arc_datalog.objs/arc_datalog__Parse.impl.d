lib/datalog/parse.ml: Arc_core Arc_value Array Ast List Option Printf String
