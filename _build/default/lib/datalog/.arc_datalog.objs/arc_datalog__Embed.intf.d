lib/datalog/embed.mli: Arc_core Ast
