lib/datalog/embed.ml: Arc_core Ast List Printf String
