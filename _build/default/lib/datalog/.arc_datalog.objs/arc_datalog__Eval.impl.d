lib/datalog/eval.ml: Arc_core Arc_relation Arc_value Array Ast Hashtbl List Printf String
