open Ast
module A = Arc_core.Ast

exception Embed_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Embed_error s)) fmt

type ctx = {
  schemas : (string * string list) list;  (* EDB and IDB attribute names *)
  mutable fresh : int;
}

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

let attrs_of ctx pred ~arity =
  match List.assoc_opt pred ctx.schemas with
  | Some attrs ->
      if List.length attrs <> arity then
        fail "schema arity mismatch for %S" pred;
      attrs
  | None -> List.init arity (fun i -> Printf.sprintf "a%d" (i + 1))

(* representative ARC terms for datalog variables *)
type renv = (string * A.term) list

let rec tr_expr (renv : renv) = function
  | X_term (D_var v) -> (
      match List.assoc_opt v renv with
      | Some t -> t
      | None -> fail "variable %S used before it is grounded" v)
  | X_term (D_const c) -> A.Const c
  | X_term D_wild -> fail "wildcard in expression"
  | X_binop (op, l, r) -> A.Scalar (op, [ tr_expr renv l; tr_expr renv r ])

(* Bind a positive atom: introduces one binding and equality predicates;
   extends the representative environment for fresh variables. *)
let bind_atom ctx (renv : renv) (a : atom) :
    A.binding * A.formula list * renv =
  let var = fresh ctx (String.lowercase_ascii (String.sub a.pred 0 1)) in
  let attrs = attrs_of ctx a.pred ~arity:(List.length a.args) in
  let preds = ref [] in
  let renv' =
    List.fold_left2
      (fun renv arg attr ->
        match arg with
        | D_wild -> renv
        | D_const c ->
            preds :=
              !preds @ [ A.Pred (A.Cmp (A.Eq, A.Attr (var, attr), A.Const c)) ];
            renv
        | D_var v -> (
            match List.assoc_opt v renv with
            | Some t ->
                preds :=
                  !preds @ [ A.Pred (A.Cmp (A.Eq, A.Attr (var, attr), t)) ];
                renv
            | None -> (v, A.Attr (var, attr)) :: renv))
      renv a.args attrs
  in
  ({ A.var; source = A.Base a.pred }, !preds, renv')

let rec tr_body ctx (renv : renv) (lits : literal list) :
    A.binding list * A.formula list * renv =
  (* positive atoms first (they ground variables), then the rest in order *)
  let pos, rest =
    List.partition (function L_pos _ -> true | _ -> false) lits
  in
  let bindings, preds, renv =
    List.fold_left
      (fun (bs, ps, renv) l ->
        match l with
        | L_pos a ->
            let b, ps', renv' = bind_atom ctx renv a in
            (bs @ [ b ], ps @ ps', renv')
        | _ -> assert false)
      ([], [], renv) pos
  in
  List.fold_left
    (fun (bs, ps, renv) l ->
      match l with
      | L_pos _ -> assert false
      | L_neg a ->
          let b, ps', renv' = bind_atom ctx renv a in
          ignore renv';
          (* variables local to the negated atom stay local *)
          ( bs,
            ps
            @ [
                A.Not
                  (A.Exists
                     {
                       bindings = [ b ];
                       grouping = None;
                       join = None;
                       body = A.And ps';
                     });
              ],
            renv )
      | L_cmp (A.Eq, X_term (D_var v), e) when not (List.mem_assoc v renv) ->
          (bs, ps, (v, tr_expr renv e) :: renv)
      | L_cmp (A.Eq, e, X_term (D_var v)) when not (List.mem_assoc v renv) ->
          (bs, ps, (v, tr_expr renv e) :: renv)
      | L_cmp (op, l, r) ->
          (bs, ps @ [ A.Pred (A.Cmp (op, tr_expr renv l, tr_expr renv r)) ], renv)
      | L_agg (v, kind, target, body) ->
          (* FOI: correlated nested collection with γ∅ (Eq 15) *)
          let head = fresh ctx "X" in
          let inner_bs, inner_ps, inner_renv = tr_body ctx renv body in
          let agg_term = A.Agg (kind, tr_expr inner_renv target) in
          let inner : A.collection =
            {
              head = { head_name = head; head_attrs = [ "res" ] };
              body =
                A.Exists
                  {
                    bindings = inner_bs;
                    grouping = Some [];
                    join = None;
                    body =
                      A.And
                        (inner_ps
                        @ [ A.Pred (A.Cmp (A.Eq, A.Attr (head, "res"), agg_term)) ]);
                  };
            }
          in
          let x = fresh ctx "x" in
          if List.mem_assoc v renv then
            ( bs @ [ { A.var = x; source = A.Nested inner } ],
              ps
              @ [ A.Pred (A.Cmp (A.Eq, A.Attr (x, "res"), List.assoc v renv)) ],
              renv )
          else
            ( bs @ [ { A.var = x; source = A.Nested inner } ],
              ps,
              (v, A.Attr (x, "res")) :: renv ))
    (bindings, preds, renv)
    rest

let tr_rule ctx (head_attrs : string list) (r : rule) : A.formula =
  let bindings, preds, renv = tr_body ctx [] r.body in
  let head_preds =
    List.map2
      (fun arg attr ->
        match arg with
        | D_var v -> (
            match List.assoc_opt v renv with
            | Some t ->
                A.Pred (A.Cmp (A.Eq, A.Attr (r.head.pred, attr), t))
            | None -> fail "head variable %S not grounded" v)
        | D_const c ->
            A.Pred (A.Cmp (A.Eq, A.Attr (r.head.pred, attr), A.Const c))
        | D_wild -> fail "wildcard in rule head")
      r.head.args head_attrs
  in
  A.Exists
    {
      bindings;
      grouping = None;
      join = None;
      body = A.And (preds @ head_preds);
    }

let definition ?(schemas = []) (prog : program) pred : A.definition =
  let rules = List.filter (fun r -> r.head.pred = pred) prog in
  if rules = [] then fail "no rules for predicate %S" pred;
  let arity = List.length (List.hd rules).head.args in
  let idb_schemas =
    List.map
      (fun p ->
        ( p,
          let r = List.find (fun r -> r.head.pred = p) prog in
          List.init (List.length r.head.args) (fun i ->
              Printf.sprintf "a%d" (i + 1)) ))
      (head_preds prog)
  in
  let ctx = { schemas = schemas @ idb_schemas; fresh = 0 } in
  let head_attrs = attrs_of ctx pred ~arity in
  let disjuncts = List.map (tr_rule ctx head_attrs) rules in
  {
    A.def_name = pred;
    def_body =
      {
        head = { head_name = pred; head_attrs };
        body = (match disjuncts with [ d ] -> d | ds -> A.Or ds);
      };
  }

let program ?(schemas = []) (prog : program) ~query : A.program =
  let preds = head_preds prog in
  let defs = List.map (definition ~schemas prog) preds in
  let qdef =
    match List.find_opt (fun (d : A.definition) -> d.A.def_name = query) defs with
    | Some d -> d
    | None -> fail "query predicate %S not defined" query
  in
  let attrs = qdef.A.def_body.A.head.head_attrs in
  let main : A.collection =
    {
      head = { head_name = "Out"; head_attrs = attrs };
      body =
        A.Exists
          {
            bindings = [ { A.var = "q"; source = A.Base query } ];
            grouping = None;
            join = None;
            body =
              A.And
                (List.map
                   (fun a -> A.Pred (A.Cmp (A.Eq, A.Attr ("Out", a), A.Attr ("q", a))))
                   attrs);
          };
    }
  in
  { A.defs; main = A.Coll main }
