(** Abstract syntax for a Datalog dialect with Soufflé-style aggregates
    (paper, Sections 2.5, 2.6, 2.9; Eqs 6, 15).

    The dialect is positional ("unnamed perspective"): atoms apply predicate
    symbols to terms. Aggregates follow Soufflé's FOI discipline — the
    aggregate body is its own scope, and "you cannot export information from
    within the body of an aggregate" (paper, quoting the Soufflé manual). *)

type dterm =
  | D_var of string
  | D_const of Arc_value.Value.t
  | D_wild  (** the anonymous variable [_] *)

type dexpr =
  | X_term of dterm
  | X_binop of Arc_core.Ast.scalar_op * dexpr * dexpr

type atom = { pred : string; args : dterm list }

type literal =
  | L_pos of atom
  | L_neg of atom  (** [!S(x, y)] — stratified negation *)
  | L_cmp of Arc_core.Ast.cmp_op * dexpr * dexpr
      (** comparisons, and variable assignments via [=] when one side is a
          fresh variable *)
  | L_agg of string * Arc_value.Aggregate.kind * dexpr * literal list
      (** [v = sum x : { body }]: Soufflé aggregate; [v] is bound to the
          aggregate of [x] over the solutions of [body]; body variables do
          not escape, outer variables ground the body (FOI). *)

type rule = { head : atom; body : literal list }

type program = rule list

val rule_to_string : rule -> string
val program_to_string : program -> string

val head_preds : program -> string list
(** Distinct head predicate names, in first-occurrence order. *)

val equal_program : program -> program -> bool
