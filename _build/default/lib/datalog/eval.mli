(** Stratified Datalog evaluator under Soufflé conventions (paper,
    Section 2.6): set semantics, two-valued logic, no NULLs, and aggregates
    over empty bodies yielding 0 (the behavior contrasted with SQL's NULL in
    Eq 15).

    Negation and aggregation must be stratified: no predicate may depend on
    itself through [!] or through an aggregate body. Rules must be safe:
    every variable must be groundable by positive atoms, assignments, or
    aggregate results, in some evaluation order. *)

exception Datalog_error of string

val run :
  db:Arc_relation.Database.t -> Ast.program -> (string * Arc_relation.Relation.t) list
(** Computes all IDB relations by stratified fixpoint iteration. IDB
    attribute names are positional: [a1], [a2], …. Raises
    {!Datalog_error} on unstratifiable or unsafe programs. *)

val query :
  db:Arc_relation.Database.t -> Ast.program -> string -> Arc_relation.Relation.t
(** [query ~db prog p] runs the program and returns IDB relation [p]. *)
