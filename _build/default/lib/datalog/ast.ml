module V = Arc_value.Value
module Aggregate = Arc_value.Aggregate

type dterm = D_var of string | D_const of V.t | D_wild

type dexpr =
  | X_term of dterm
  | X_binop of Arc_core.Ast.scalar_op * dexpr * dexpr

type atom = { pred : string; args : dterm list }

type literal =
  | L_pos of atom
  | L_neg of atom
  | L_cmp of Arc_core.Ast.cmp_op * dexpr * dexpr
  | L_agg of string * Aggregate.kind * dexpr * literal list

type rule = { head : atom; body : literal list }

type program = rule list

let dterm_to_string = function
  | D_var v -> v
  | D_const c -> V.to_string c
  | D_wild -> "_"

let rec dexpr_to_string = function
  | X_term t -> dterm_to_string t
  | X_binop (op, l, r) ->
      Printf.sprintf "%s %s %s" (atom_expr l)
        (Arc_core.Pp.scalar_op_symbol op)
        (atom_expr r)

and atom_expr e =
  match e with
  | X_binop _ -> "(" ^ dexpr_to_string e ^ ")"
  | _ -> dexpr_to_string e

let atom_to_string a =
  Printf.sprintf "%s(%s)" a.pred
    (String.concat ", " (List.map dterm_to_string a.args))

let rec literal_to_string = function
  | L_pos a -> atom_to_string a
  | L_neg a -> "!" ^ atom_to_string a
  | L_cmp (op, l, r) ->
      Printf.sprintf "%s %s %s" (dexpr_to_string l)
        (Arc_core.Ast.cmp_op_to_string op)
        (dexpr_to_string r)
  | L_agg (v, k, target, body) ->
      Printf.sprintf "%s = %s %s : { %s }" v
        (Aggregate.kind_to_string k)
        (dexpr_to_string target)
        (String.concat ", " (List.map literal_to_string body))

let rule_to_string r =
  Printf.sprintf "%s :- %s." (atom_to_string r.head)
    (String.concat ", " (List.map literal_to_string r.body))

let program_to_string p = String.concat "\n" (List.map rule_to_string p)

let head_preds p =
  List.fold_left
    (fun acc r -> if List.mem r.head.pred acc then acc else acc @ [ r.head.pred ])
    [] p

let equal_program (a : program) (b : program) = a = b
