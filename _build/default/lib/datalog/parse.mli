(** Parser for the Soufflé-style Datalog dialect, e.g.

    {v
    Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.
    A(x, y) :- P(x, y).
    A(x, y) :- P(x, z), A(z, y).
    v} *)

exception Parse_error of string

val program_of_string : string -> Ast.program
val rule_of_string : string -> Ast.rule
