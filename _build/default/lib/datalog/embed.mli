(** Datalog → ARC embedding (paper, Sections 2.5, 2.9).

    Rules sharing a head predicate become one ARC definition whose body is a
    disjunction (Eq 16); positional atoms become named bindings with explicit
    equality predicates (the named-perspective translation of Section 2.1);
    stratified negation becomes [¬∃]; Soufflé aggregates become the FOI
    pattern — a correlated nested collection with γ∅ (Fig 5 / Eq 15).

    Evaluating the embedded program under {!Arc_value.Conventions.souffle}
    agrees with {!Eval} — verified by the test suite on every example. *)

exception Embed_error of string

val program :
  ?schemas:(string * string list) list ->
  Ast.program ->
  query:string ->
  Arc_core.Ast.program
(** [program ~schemas prog ~query] embeds every rule and returns an ARC
    program whose main collection selects all attributes of IDB predicate
    [query]. [schemas] gives attribute names of EDB relations (positional
    names [a1], … are synthesized for IDB predicates and unknown EDBs). *)

val definition :
  ?schemas:(string * string list) list ->
  Ast.program ->
  string ->
  Arc_core.Ast.definition
(** The ARC definition for one head predicate. *)
