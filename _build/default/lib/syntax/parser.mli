(** Recursive-descent parser for ARC's comprehension syntax — the inverse of
    {!Printer}. Accepts both Unicode and ASCII renderings (see {!Lexer}). *)

open Arc_core.Ast

exception Parse_error of string

val query_of_string : string -> query
(** Parses either a collection [{Q(…) | …}] or a Boolean sentence. *)

val collection_of_string : string -> collection
val formula_of_string : string -> formula

val program_of_string : string -> program
(** Zero or more [def Name := {…}] definitions followed by the main query. *)
