(** Lexer for ARC's comprehension syntax.

    Accepts both the Unicode rendering (∃, ∈, ∧, ∨, ¬, γ, ∅, ≤, ≥, ≠) and the
    ASCII rendering ([exists], [in], [and], [or], [not], [gamma], [0], [<=],
    [>=], [<>]). Exotic relation names such as ["-"] or ["*"] (external
    relations, Section 2.13.1) are written as double-quoted identifiers. *)

type token =
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | PIPE
  | COMMA
  | DOT
  | UNDERSCORE
  | ASSIGN  (** [:=] *)
  | IDENT of string
  | NUMBER of Arc_value.Value.t
  | STRING of string
  | KW of string
      (** [exists in and or not gamma emptyset def is null like true inner
          left full] *)
  | OP of string  (** [= <> < <= > >= + - * /] *)
  | EOF

exception Lex_error of string * int  (** message, byte offset *)

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input. The result ends with [EOF]. *)

val token_to_string : token -> string
