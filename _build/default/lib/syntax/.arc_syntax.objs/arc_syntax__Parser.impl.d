lib/syntax/parser.ml: Arc_core Arc_value Array Lexer Printf
