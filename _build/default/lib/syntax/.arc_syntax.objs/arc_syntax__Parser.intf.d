lib/syntax/parser.mli: Arc_core
