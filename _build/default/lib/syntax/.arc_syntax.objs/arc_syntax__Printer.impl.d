lib/syntax/printer.ml: Arc_core Arc_value Buffer List Printf String
