lib/syntax/lexer.ml: Arc_value List Printf String
