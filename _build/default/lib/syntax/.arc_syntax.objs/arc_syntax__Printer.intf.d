lib/syntax/printer.mli: Arc_core
