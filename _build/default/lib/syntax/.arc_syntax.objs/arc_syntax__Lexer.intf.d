lib/syntax/lexer.mli: Arc_value
