(** The comprehension-syntax modality (paper, Sections 2.1–2.5): renders ARC
    ASTs in the paper's textual notation, e.g.

    {v {Q(A, sm) | ∃r ∈ R, γ_{r.A} [Q.A = r.A ∧ Q.sm = sum(r.B)]} v}

    Output is valid input for {!Parser} (print/parse round-trips). Set
    [~unicode:false] for a pure-ASCII rendering ([exists], [in], [and],
    [or], [not], [gamma_0]) accepted by the same parser. *)

open Arc_core.Ast

val term : ?unicode:bool -> term -> string
val pred : ?unicode:bool -> pred -> string
val formula : ?unicode:bool -> formula -> string
val collection : ?unicode:bool -> collection -> string
val query : ?unicode:bool -> query -> string
val program : ?unicode:bool -> program -> string
(** Definitions print as [def Name := { ... }] lines before the main query. *)

val pretty_query : ?unicode:bool -> ?width:int -> query -> string
(** Multi-line layout with indentation tracking scope nesting, for human
    reading; also parseable. *)
