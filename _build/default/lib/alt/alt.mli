(** The Abstract Language Tree (ALT) modality (paper, Section 2.2).

    An ALT is a hierarchically structured representation of the {e semantics}
    of a query rather than its syntax: collections, heads, quantifier scopes,
    bindings, grouping operators, connectives, and predicates appear as typed
    nodes whose nesting mirrors lexical scoping. After the {e linking step}
    (name resolution), cross-edges connect every attribute reference to the
    binding (or head) that declares its range variable, and every grouping
    key to its binding — turning the tree into the hierarchical graph the
    paper calls an Abstract Language Higraph (ALH).

    Machine-facing serializations (JSON, s-expressions) and the textual
    rendering used in the paper's figures are provided. *)

open Arc_core.Ast

type kind =
  | Collection_node
  | Head_node of head
  | Quantifier_node
  | Binding_node of var * rel_name option
      (** [Some rel] for base-relation bindings; [None] for nested
          collections, whose [Collection_node] is the binding's child. *)
  | Grouping_node of grouping
  | Join_node of join_tree
  | And_node
  | Or_node
  | Not_node
  | Predicate_node of pred
  | True_node
  | Definition_node of rel_name

type node = { id : int; kind : kind; children : node list }

type edge_kind = Var_ref | Group_key

type edge = { src : int; dst : int; label : string; ekind : edge_kind }
(** [src] is the referencing node (predicate or grouping), [dst] the
    binding/head node that declares the variable; [label] is the referenced
    attribute, e.g. ["r.A"]. *)

type t = {
  root : node;
  edges : edge list;  (** Present after {!link}; empty in a bare tree. *)
}

val of_query : query -> t
(** Builds the bare (unlinked) ALT. Node ids are assigned in preorder. *)

val of_program : program -> t
(** Definitions become [Definition_node]s preceding the main query under a
    synthetic root collection node. *)

val link : t -> t
(** The linking step: resolves every variable occurrence to its declaring
    binding/head node and adds {!edge}s. References that cannot be resolved
    (free variables) are silently skipped — run {!Arc_core.Analysis.validate}
    first to reject those. *)

val node_label : kind -> string
(** The figure-style label, e.g. ["BINDING: r \xe2\x88\x88 R"],
    ["GROUPING: r.A"], ["PREDICATE: Q.sm = sum(r.B)"]. *)

val render : t -> string
(** Textual tree rendering in the style of the paper's Figures 2a/4b/5c,
    with box-drawing branches; linked edges are appended as a "links:"
    section when present. *)

val to_json : t -> string
(** Machine-facing JSON: nodes with [id], [kind], [label], [children];
    plus a top-level [edges] array. *)

val to_sexp : t -> string

val to_query : t -> query
(** Reconstructs the ARC AST from the tree — the inverse of {!of_query}.
    Modalities are {e lossless} presentations of the relational core (paper,
    Section 1): [to_query (of_query q) = q] for every query, which the test
    suite checks both on the paper catalog and on random queries. Raises
    [Invalid_argument] on trees not produced by {!of_query} (e.g. a
    definition forest from {!of_program}). *)

val size : t -> int
(** Number of nodes. *)

val find_node : t -> int -> node option
