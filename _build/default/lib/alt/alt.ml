open Arc_core.Ast
module Pp = Arc_core.Pp

type kind =
  | Collection_node
  | Head_node of head
  | Quantifier_node
  | Binding_node of var * rel_name option
  | Grouping_node of grouping
  | Join_node of join_tree
  | And_node
  | Or_node
  | Not_node
  | Predicate_node of pred
  | True_node
  | Definition_node of rel_name

type node = { id : int; kind : kind; children : node list }

type edge_kind = Var_ref | Group_key

type edge = { src : int; dst : int; label : string; ekind : edge_kind }

type t = { root : node; edges : edge list }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type builder = { mutable next : int }

let fresh b =
  let id = b.next in
  b.next <- id + 1;
  id

let rec build_formula b f =
  match f with
  | True -> { id = fresh b; kind = True_node; children = [] }
  | Pred p -> { id = fresh b; kind = Predicate_node p; children = [] }
  | And fs ->
      let id = fresh b in
      { id; kind = And_node; children = List.map (build_formula b) fs }
  | Or fs ->
      let id = fresh b in
      { id; kind = Or_node; children = List.map (build_formula b) fs }
  | Not f ->
      let id = fresh b in
      { id; kind = Not_node; children = [ build_formula b f ] }
  | Exists s ->
      let id = fresh b in
      let bindings =
        List.map
          (fun bd ->
            let bid = fresh b in
            let children, src =
              match bd.source with
              | Base n -> ([], Some n)
              | Nested c -> ([ build_collection b c ], None)
            in
            { id = bid; kind = Binding_node (bd.var, src); children })
          s.bindings
      in
      let grouping =
        match s.grouping with
        | Some g -> [ { id = fresh b; kind = Grouping_node g; children = [] } ]
        | None -> []
      in
      let join =
        match s.join with
        | Some j -> [ { id = fresh b; kind = Join_node j; children = [] } ]
        | None -> []
      in
      let body = build_formula b s.body in
      { id; kind = Quantifier_node; children = bindings @ grouping @ join @ [ body ] }

and build_collection b c =
  let id = fresh b in
  let head = { id = fresh b; kind = Head_node c.head; children = [] } in
  let body = build_formula b c.body in
  { id; kind = Collection_node; children = [ head; body ] }

let of_query q =
  let b = { next = 0 } in
  match q with
  | Coll c -> { root = build_collection b c; edges = [] }
  | Sentence f -> { root = build_formula b f; edges = [] }

let of_program (p : program) =
  let b = { next = 0 } in
  let root_id = fresh b in
  let defs =
    List.map
      (fun d ->
        let id = fresh b in
        {
          id;
          kind = Definition_node d.def_name;
          children = [ build_collection b d.def_body ];
        })
      p.defs
  in
  let main =
    match p.main with
    | Coll c -> build_collection b c
    | Sentence f -> build_formula b f
  in
  if defs = [] then { root = main; edges = [] }
  else
    {
      root = { id = root_id; kind = Collection_node; children = defs @ [ main ] };
      edges = [];
    }

(* ------------------------------------------------------------------ *)
(* Labels                                                              *)
(* ------------------------------------------------------------------ *)

let node_label = function
  | Collection_node -> "COLLECTION"
  | Head_node h -> "HEAD: " ^ Pp.head h
  | Quantifier_node -> "QUANTIFIER \xe2\x88\x83"
  | Binding_node (v, Some rel) -> Printf.sprintf "BINDING: %s \xe2\x88\x88 %s" v rel
  | Binding_node (v, None) -> Printf.sprintf "BINDING: %s \xe2\x88\x88" v
  | Grouping_node [] -> "GROUPING: \xe2\x88\x85"
  | Grouping_node keys ->
      "GROUPING: "
      ^ String.concat ", " (List.map (fun (v, a) -> v ^ "." ^ a) keys)
  | Join_node j -> "JOIN: " ^ Pp.join_tree j
  | And_node -> "AND \xe2\x88\xa7"
  | Or_node -> "OR \xe2\x88\xa8"
  | Not_node -> "NOT \xc2\xac"
  | Predicate_node p -> "PREDICATE: " ^ Pp.pred p
  | True_node -> "TRUE"
  | Definition_node n -> "DEFINITION: " ^ n

(* ------------------------------------------------------------------ *)
(* Linking                                                             *)
(* ------------------------------------------------------------------ *)

type linkenv = { vars : (string * int) list; heads : (string * int) list }

let link t =
  let edges = ref [] in
  let add src dst label ekind = edges := { src; dst; label; ekind } :: !edges in
  let resolve env v =
    match List.assoc_opt v env.vars with
    | Some id -> Some id
    | None -> List.assoc_opt v env.heads
  in
  let link_pred env n p =
    List.iter
      (fun term ->
        List.iter
          (fun (v, a) ->
            match resolve env v with
            | Some dst -> add n.id dst (v ^ "." ^ a) Var_ref
            | None -> ())
          (term_vars term))
      (pred_terms p)
  in
  let rec walk env n =
    match n.kind with
    | Collection_node ->
        let head_entry =
          List.filter_map
            (fun ch ->
              match ch.kind with
              | Head_node h -> Some (h.head_name, ch.id)
              | _ -> None)
            n.children
        in
        (* inside its own body, only this collection's head is visible *)
        let env' = { env with heads = head_entry } in
        List.iter (walk env') n.children
    | Quantifier_node ->
        let env' =
          List.fold_left
            (fun acc ch ->
              match ch.kind with
              | Binding_node (v, _) ->
                  (* nested collections see earlier bindings, not this one *)
                  List.iter (walk acc) ch.children;
                  { acc with vars = (v, ch.id) :: acc.vars }
              | _ -> acc)
            env n.children
        in
        List.iter
          (fun ch ->
            match ch.kind with
            | Binding_node _ -> ()
            | Grouping_node keys ->
                List.iter
                  (fun (v, a) ->
                    match resolve env' v with
                    | Some dst -> add ch.id dst (v ^ "." ^ a) Group_key
                    | None -> ())
                  keys
            | _ -> walk env' ch)
          n.children
    | Predicate_node p -> link_pred env n p
    | Head_node _ | Grouping_node _ | Join_node _ | True_node
    | Binding_node _ -> ()
    | And_node | Or_node | Not_node | Definition_node _ ->
        List.iter (walk env) n.children
  in
  walk { vars = []; heads = [] } t.root;
  { t with edges = List.rev !edges }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 512 in
  let rec go ~root prefix is_last n =
    let branch, cont =
      if root then ("", "")
      else if is_last then (prefix ^ "\xe2\x94\x94\xe2\x94\x80 ", prefix ^ "   ")
      else (prefix ^ "\xe2\x94\x9c\xe2\x94\x80 ", prefix ^ "\xe2\x94\x82  ")
    in
    Buffer.add_string buf branch;
    Buffer.add_string buf (node_label n.kind);
    Buffer.add_string buf (Printf.sprintf "  #%d\n" n.id);
    let rec children = function
      | [] -> ()
      | [ c ] -> go ~root:false cont true c
      | c :: rest ->
          go ~root:false cont false c;
          children rest
    in
    children n.children
  in
  go ~root:true "" true t.root;
  if t.edges <> [] then begin
    Buffer.add_string buf "links:\n";
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "  #%d \xe2\x86\x92 #%d  %s%s\n" e.src e.dst e.label
             (match e.ekind with Var_ref -> "" | Group_key -> " (grouping key)")))
      t.edges
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kind_name = function
  | Collection_node -> "collection"
  | Head_node _ -> "head"
  | Quantifier_node -> "quantifier"
  | Binding_node _ -> "binding"
  | Grouping_node _ -> "grouping"
  | Join_node _ -> "join"
  | And_node -> "and"
  | Or_node -> "or"
  | Not_node -> "not"
  | Predicate_node _ -> "predicate"
  | True_node -> "true"
  | Definition_node _ -> "definition"

let to_json t =
  let buf = Buffer.create 1024 in
  let rec node n =
    Buffer.add_string buf
      (Printf.sprintf "{\"id\":%d,\"kind\":\"%s\",\"label\":\"%s\",\"children\":["
         n.id (kind_name n.kind)
         (json_escape (node_label n.kind)));
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        node c)
      n.children;
    Buffer.add_string buf "]}"
  in
  Buffer.add_string buf "{\"root\":";
  node t.root;
  Buffer.add_string buf ",\"edges\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"src\":%d,\"dst\":%d,\"label\":\"%s\",\"kind\":\"%s\"}"
           e.src e.dst (json_escape e.label)
           (match e.ekind with Var_ref -> "ref" | Group_key -> "group_key")))
    t.edges;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_sexp t =
  let buf = Buffer.create 1024 in
  let atom s =
    if
      s <> ""
      && String.for_all
           (function
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
             | _ -> false)
           s
    then s
    else "\"" ^ json_escape s ^ "\""
  in
  let rec node n =
    Buffer.add_string buf
      (Printf.sprintf "(%s %d %s" (kind_name n.kind) n.id
         (atom (node_label n.kind)));
    List.iter
      (fun c ->
        Buffer.add_char buf ' ';
        node c)
      n.children;
    Buffer.add_char buf ')'
  in
  node t.root;
  if t.edges <> [] then begin
    Buffer.add_string buf "\n(edges";
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf " (%d %d %s)" e.src e.dst (atom e.label)))
      t.edges;
    Buffer.add_char buf ')'
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reconstruction (the modality is lossless)                           *)
(* ------------------------------------------------------------------ *)

let rec node_to_formula n : formula =
  match n.kind with
  | True_node -> True
  | Predicate_node p -> Pred p
  | And_node -> And (List.map node_to_formula n.children)
  | Or_node -> Or (List.map node_to_formula n.children)
  | Not_node -> (
      match n.children with
      | [ c ] -> Not (node_to_formula c)
      | _ -> invalid_arg "Alt.to_query: malformed NOT node")
  | Quantifier_node ->
      let bindings =
        List.filter_map
          (fun c ->
            match c.kind with
            | Binding_node (v, Some rel) -> Some { var = v; source = Base rel }
            | Binding_node (v, None) -> (
                match c.children with
                | [ coll ] ->
                    Some { var = v; source = Nested (node_to_collection coll) }
                | _ -> invalid_arg "Alt.to_query: malformed nested binding")
            | _ -> None)
          n.children
      in
      let grouping =
        List.find_map
          (fun c ->
            match c.kind with Grouping_node g -> Some g | _ -> None)
          n.children
      in
      let join =
        List.find_map
          (fun c -> match c.kind with Join_node j -> Some j | _ -> None)
          n.children
      in
      let body =
        match List.rev n.children with
        | last :: _ -> (
            match last.kind with
            | Binding_node _ | Grouping_node _ | Join_node _ ->
                invalid_arg "Alt.to_query: quantifier without a body"
            | _ -> node_to_formula last)
        | [] -> invalid_arg "Alt.to_query: empty quantifier"
      in
      Exists { bindings; grouping; join; body }
  | Collection_node | Head_node _ | Binding_node _ | Grouping_node _
  | Join_node _ | Definition_node _ ->
      invalid_arg "Alt.to_query: unexpected node in formula position"

and node_to_collection n : collection =
  match (n.kind, n.children) with
  | Collection_node, [ h; body ] -> (
      match h.kind with
      | Head_node head -> { head; body = node_to_formula body }
      | _ -> invalid_arg "Alt.to_query: collection without a head")
  | _ -> invalid_arg "Alt.to_query: malformed collection node"

let to_query t : query =
  match t.root.kind with
  | Collection_node -> Coll (node_to_collection t.root)
  | _ -> Sentence (node_to_formula t.root)

let size t =
  let rec count n = 1 + List.fold_left (fun acc c -> acc + count c) 0 n.children in
  count t.root

let find_node t id =
  let rec go n =
    if n.id = id then Some n
    else List.fold_left (fun acc c -> if acc = None then go c else acc) None n.children
  in
  go t.root
