lib/alt/alt.ml: Arc_core Buffer Char List Printf String
