lib/alt/alt.mli: Arc_core
