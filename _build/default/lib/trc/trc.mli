(** Textbook Tuple Relational Calculus, and its normalization into ARC
    (paper, Section 2.1).

    The paper starts from the TRC notation of Elmasri & Navathe,

    {v {r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]} v}

    and makes exactly two changes to reach ARC's strict form:

    + {e clarify the scopes}: whenever a relation variable is quantified it
      is also bound to a relation — the floating membership atom [s ∈ S]
      moves into the quantifier, [∃s ∈ S[…]];
    + {e strict heads}: variables bound in the body may not appear in the
      head; the head declares fresh attributes that receive values through
      explicit assignment predicates, [{Q(A) | ∃r ∈ R[Q.A = r.A ∧ …]}].

    This module parses the permissive textbook notation (head projections,
    free range variables, floating membership atoms, quantifiers without
    ranges) and performs that normalization, producing an ARC collection
    that validates under {!Arc_core.Analysis}. *)

type texpr =
  | T_attr of string * string  (** [r.A] *)
  | T_const of Arc_value.Value.t

type tformula =
  | T_member of string * string  (** the floating atom [r ∈ R] *)
  | T_cmp of Arc_core.Ast.cmp_op * texpr * texpr
  | T_and of tformula list
  | T_or of tformula list
  | T_not of tformula
  | T_exists of string list * tformula
      (** [∃s, t[…]] — ranges may come from membership atoms in the body *)
  | T_forall of string list * tformula
      (** [∀s[φ]] — normalized away as [¬∃s[¬φ]] *)

type query = {
  head : (string * string) list;  (** projected attributes, [r.A, s.B, …] *)
  body : tformula;
}

exception Parse_error of string
exception Normalize_error of string

val parse : string -> query
(** Accepts the textbook notation, ASCII or Unicode, e.g.
    ["{r.A | r in R and exists s[r.B = s.B and s.C = 0 and s in S]}"]. *)

val to_string : query -> string

val normalize : ?head_name:string -> query -> Arc_core.Ast.collection
(** The two-step normalization of Section 2.1. Head attributes are named
    after the projected attributes (deduplicated positionally when names
    collide). Raises {!Normalize_error} when a quantified variable has no
    membership atom anywhere in its scope (a genuinely range-less variable),
    or a free body variable other than the head's range variables is used. *)

val to_arc : ?head_name:string -> string -> Arc_core.Ast.collection
(** [parse] followed by {!normalize}. *)
