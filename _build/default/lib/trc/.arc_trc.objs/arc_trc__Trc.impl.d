lib/trc/trc.ml: Arc_core Arc_value Array Hashtbl List Option Printf String
