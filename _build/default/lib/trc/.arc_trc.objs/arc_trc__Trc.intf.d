lib/trc/trc.mli: Arc_core Arc_value
