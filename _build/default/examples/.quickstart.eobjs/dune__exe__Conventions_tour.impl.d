examples/conventions_tour.ml: Arc_catalog Arc_core Arc_engine Arc_relation Arc_sql Arc_syntax Arc_value List Printf String
