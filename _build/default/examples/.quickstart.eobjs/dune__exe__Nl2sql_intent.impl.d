examples/nl2sql_intent.ml: Arc_intent List Printf
