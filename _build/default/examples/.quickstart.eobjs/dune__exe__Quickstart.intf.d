examples/quickstart.mli:
