examples/cross_language.ml: Arc_alt Arc_catalog Arc_core Arc_datalog Arc_engine Arc_higraph Arc_relation Arc_rellang Arc_sql Arc_syntax Arc_value List Printf String
