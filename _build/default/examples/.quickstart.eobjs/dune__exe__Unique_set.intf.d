examples/unique_set.mli:
