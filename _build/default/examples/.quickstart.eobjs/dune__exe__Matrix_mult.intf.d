examples/matrix_mult.mli:
