examples/analytics_workload.mli:
