examples/nl2sql_intent.mli:
