examples/relational_division.ml: Arc_core Arc_engine Arc_higraph Arc_relation Arc_sql Arc_syntax Arc_value List Printf Random
