examples/count_bug.ml: Arc_catalog Arc_core Arc_engine Arc_higraph Arc_relation Arc_syntax List Printf
