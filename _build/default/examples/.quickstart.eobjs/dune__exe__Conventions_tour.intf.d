examples/conventions_tour.mli:
