examples/matrix_mult.ml: Arc_catalog Arc_core Arc_engine Arc_higraph Arc_relation Arc_syntax Arc_value Array List Printf Random String
