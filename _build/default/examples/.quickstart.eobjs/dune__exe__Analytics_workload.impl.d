examples/analytics_workload.ml: Arc_core Arc_engine Arc_relation Arc_sql Arc_syntax Arc_value List Printf String
