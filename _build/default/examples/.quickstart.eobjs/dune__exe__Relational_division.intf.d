examples/relational_division.mli:
