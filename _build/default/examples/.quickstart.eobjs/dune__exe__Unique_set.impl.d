examples/unique_set.ml: Arc_catalog Arc_core Arc_engine Arc_higraph Arc_relation Arc_sql Arc_syntax Printf
