(* The Rosetta Stone demo (paper, Sections 1-2): one query intent — "for
   each value of R.A, the sum of associated R.B values" — expressed in four
   languages, all embedded into ARC, all evaluated to the same relation,
   while ARC's pattern vocabulary names how their formulations differ.

   Run with:  dune exec examples/cross_language.exe *)

module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Pattern = Arc_core.Pattern
module Data = Arc_catalog.Data

let i = V.int

let db =
  Database.of_list
    [
      ( "R",
        Relation.of_rows [ "A"; "B" ]
          [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
    ]

let header s =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" s

let show_pattern name q =
  let p = Pattern.of_query q in
  Printf.printf "  pattern (%s): %s\n" name (Pattern.to_string p)

let rel_line r =
  String.concat "  "
    (List.map Arc_relation.Tuple.to_string (Relation.tuples (Relation.sort r)))

let () =
  print_endline "One intent: per-A sums of R(A,B) = {(1,10), (1,20), (2,5)}.";

  header "1. SQL (Fig 4a) — GROUP BY, the FIO pattern";
  print_endline ("  " ^ Data.sql_fig4a);
  let via_sql = Arc_sql.Eval_sql.run_string ~db Data.sql_fig4a in
  Printf.printf "\n  result: %s\n" (rel_line via_sql);
  let arc_of_sql =
    Arc_sql.To_arc.statement
      ~schemas:[ ("R", [ "A"; "B" ]) ]
      (Arc_sql.Parse.statement_of_string Data.sql_fig4a)
  in
  print_endline "\n  embedded in ARC:";
  Printf.printf "  %s\n" (Arc_syntax.Printer.program arc_of_sql);
  show_pattern "SQL" arc_of_sql.Arc_core.Ast.main;

  header "2. Soufflé Datalog (Eq 6) — head aggregate, the FOI pattern";
  print_endline ("  " ^ Data.souffle_eq6);
  let dprog = Arc_datalog.Parse.program_of_string Data.souffle_eq6 in
  let via_dl = Arc_datalog.Eval.query ~db dprog "Q" in
  Printf.printf "\n  result: %s\n" (rel_line via_dl);
  let arc_of_dl =
    Arc_datalog.Embed.program ~schemas:[ ("R", [ "A"; "B" ]) ] dprog ~query:"Q"
  in
  print_endline "\n  embedded in ARC:";
  Printf.printf "  %s\n"
    (Arc_syntax.Printer.query
       (Arc_core.Ast.Coll (List.hd arc_of_dl.Arc_core.Ast.defs).Arc_core.Ast.def_body));
  show_pattern "Datalog"
    (Arc_core.Ast.Coll (List.hd arc_of_dl.Arc_core.Ast.defs).Arc_core.Ast.def_body);

  header "3. Rel (Section 2.5) — aggregation as variable elimination";
  print_endline
    ("  " ^ Arc_rellang.Rel.to_string Arc_rellang.Rel.paper_single_agg);
  let arc_of_rel =
    Arc_rellang.Rel.to_arc
      ~schemas:[ ("R", [ "A"; "B" ]) ]
      Arc_rellang.Rel.paper_single_agg
  in
  let via_rel =
    Arc_engine.Eval.eval_collection_standalone ~db arc_of_rel
  in
  Printf.printf "\n  result: %s\n" (rel_line via_rel);
  print_endline "\n  embedded in ARC:";
  Printf.printf "  %s\n" (Arc_syntax.Printer.query (Arc_core.Ast.Coll arc_of_rel));
  show_pattern "Rel" (Arc_core.Ast.Coll arc_of_rel);

  header "4. ARC itself (Eq 3)";
  Printf.printf "  %s\n" (Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.eq3));
  let via_arc =
    Arc_engine.Eval.run_rows ~db (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq3))
  in
  Printf.printf "\n  result: %s\n" (rel_line via_arc);
  show_pattern "ARC" (Arc_core.Ast.Coll Data.eq3);

  header "What ARC's vocabulary lets us say";
  print_endline
    "All four produce {(1,30), (2,5)} — execution match sees no difference.\n\
     The pattern signatures do: SQL and ARC share the FIO pattern with one\n\
     logical copy of R; Soufflé's head aggregate is FOI with two copies\n\
     (one to fix the grouping key from the outside, one inside the\n\
     aggregation scope); Rel returns grouped attributes from its aggregate\n\
     scope but still keeps the aggregate in a scope of its own.\n\n\
     That is the paper's point: a reference language makes these otherwise\n\
     implicit differences sayable (\"FOI aggregation\", Section 4).";

  header "And the three modalities of the shared intent (Eq 3)";
  print_endline "comprehension:";
  Printf.printf "  %s\n\n" (Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.eq3));
  print_endline "ALT (machine):";
  print_endline
    (Arc_alt.Alt.render
       (Arc_alt.Alt.link (Arc_alt.Alt.of_query (Arc_core.Ast.Coll Data.eq3))));
  print_endline "higraph (human):";
  print_endline
    (Arc_higraph.Higraph.render
       (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll Data.eq3)))
