(* Matrix multiplication as a relational query (paper, Section 3.1,
   Eqs 25-26, Fig 20): "everything is a relation", including arithmetic.

   Run with:  dune exec examples/matrix_mult.exe *)

module Data = Arc_catalog.Data
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module V = Arc_value.Value
module Eval = Arc_engine.Eval

let header s =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" s

(* a dense oracle to check against *)
let dense_of_relation r n =
  let m = Array.make_matrix n n 0 in
  List.iter
    (fun tp ->
      let get a =
        match Arc_relation.Tuple.get tp a with V.Int x -> x | _ -> 0
      in
      m.(get "row" - 1).(get "col" - 1) <- get "val")
    (Relation.tuples r);
  m

let dense_mult a b n =
  let c = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        c.(i).(j) <- c.(i).(j) + (a.(i).(k) * b.(k).(j))
      done
    done
  done;
  c

let () =
  header "Sparse matrices as relations (row, col, val)";
  print_endline "A =";
  print_endline (Relation.to_table (Database.find Data.db_matrices "A"));
  print_endline "B =";
  print_endline (Relation.to_table (Database.find Data.db_matrices "B"));

  header "Rel writes it positionally (Eq 25)";
  print_endline "def MatrixMult[i,j] :\n    sum[[k] : A[i,k]*B[k,j]]";

  header "ARC writes it in the named perspective (Eq 26)";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq26));

  header "Fig 20: multiplication reified as the external relation \"*\"";
  print_endline
    (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq26_external));
  print_endline "\nhigraph:";
  print_endline
    (Arc_higraph.Higraph.render
       (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll Data.eq26_external)));

  header "Both evaluate to A × B";
  let c1 =
    Eval.run_rows ~db:Data.db_matrices (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq26))
  in
  let c2 =
    Eval.run_rows ~db:Data.db_matrices
      (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq26_external))
  in
  print_endline (Relation.to_table (Relation.sort c1));
  Printf.printf "external-relation variant agrees: %b\n"
    (Relation.equal_set c1 c2);

  header "Checked against a dense oracle";
  let a = dense_of_relation (Database.find Data.db_matrices "A") 2 in
  let b = dense_of_relation (Database.find Data.db_matrices "B") 2 in
  let expected = dense_mult a b 2 in
  let got = dense_of_relation c1 2 in
  Printf.printf "dense result: %s\n"
    (String.concat " "
       (List.map
          (fun row -> "[" ^ String.concat ";" (List.map string_of_int row) ^ "]")
          (Array.to_list (Array.map Array.to_list expected))));
  Printf.printf "oracle agrees: %b\n" (expected = got);

  (* and on a bigger random instance *)
  header "Random 6×6 instance";
  let n = 6 in
  let rng = Random.State.make [| 7 |] in
  let random_matrix name =
    let rows = ref [] in
    for r = 1 to n do
      for c = 1 to n do
        if Random.State.int rng 3 > 0 then
          rows := [ V.Int r; V.Int c; V.Int (Random.State.int rng 9) ] :: !rows
      done
    done;
    (name, Relation.of_rows [ "row"; "col"; "val" ] !rows)
  in
  let db = Database.of_list [ random_matrix "A"; random_matrix "B" ] in
  let c =
    Eval.run_rows ~db (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq26))
  in
  let expected =
    dense_mult (dense_of_relation (Database.find db "A") n)
      (dense_of_relation (Database.find db "B") n)
      n
  in
  (* zero entries are absent from the sparse result *)
  let got = dense_of_relation c n in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if expected.(i).(j) <> got.(i).(j) then ok := false
    done
  done;
  Printf.printf "%d×%d sparse relational matmul matches the dense oracle: %b\n"
    n n !ok
