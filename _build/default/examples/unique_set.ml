(* The unique-set query with abstract relations (paper, Example 2,
   Figs 16-19): find drinkers who like a unique set of beers.

   Demonstrates abstract relations (Section 2.13.2): the Subset module is
   domain-dependent — unsafe in isolation — yet perfectly usable inside a
   safe surrounding query, where the engine resolves it through an
   all-attributes-bound access pattern.

   Run with:  dune exec examples/unique_set.exe *)

module Data = Arc_catalog.Data
module Relation = Arc_relation.Relation
module Analysis = Arc_core.Analysis
module Eval = Arc_engine.Eval

let header s =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" s

let () =
  print_endline "Likes(d, b):";
  print_endline
    (Relation.to_table (Arc_relation.Database.find Data.db_beers "L"));

  header "Flat formulation (Eq 22): four nested negations";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq22));

  header "The abstract relation Subset (Eq 23)";
  print_endline
    (Arc_syntax.Printer.pretty_query
       (Arc_core.Ast.Coll Data.eq23_subset.Arc_core.Ast.def_body));
  let env = Analysis.env ~schemas:[ ("L", [ "d"; "b" ]) ] () in
  (match
     Analysis.collection_safety ~env ~defs:[]
       Data.eq23_subset.Arc_core.Ast.def_body
   with
  | Analysis.Unsafe reason ->
      Printf.printf
        "\nIn isolation this definition is UNSAFE (abstract): %s\n" reason
  | Analysis.Safe -> print_endline "unexpectedly safe?");

  header "Modular formulation (Eq 24): the intent is readable";
  print_endline
    (Arc_syntax.Printer.program
       { Arc_core.Ast.defs = [ Data.eq23_subset ]; main = Arc_core.Ast.Coll Data.eq24 });
  print_endline
    "\n\"drinkers such that no other drinker likes both a subset and a\n\
     superset of their beers\"";

  header "Higraph with the module collapsed (Fig 16)";
  print_endline
    (Arc_higraph.Higraph.render
       (Arc_higraph.Higraph.of_query ~collapse:[ "Subset" ]
          (Arc_core.Ast.Coll Data.eq24)));

  header "All three formulations agree";
  let flat =
    Eval.run_rows ~db:Data.db_beers (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq22))
  in
  let modular =
    Eval.run_rows ~db:Data.db_beers
      { Arc_core.Ast.defs = [ Data.eq23_subset ]; main = Arc_core.Ast.Coll Data.eq24 }
  in
  let via_sql = Arc_sql.Eval_sql.run_string ~db:Data.db_beers Data.sql_fig17 in
  Printf.printf "flat (Eq 22):    %s\n" (Relation.to_table flat);
  Printf.printf "modular (Eq 24): %s\n" (Relation.to_table modular);
  Printf.printf "SQL (Fig 17):    %s\n" (Relation.to_table via_sql);
  Printf.printf "\nall equal: %b\n"
    (Relation.equal_set flat modular && Relation.equal_set flat via_sql)
