(* Intent-based validation of machine-generated SQL (paper, Sections 1, 4).

   An NL2SQL system produced several candidate queries for the question
   "total spend per customer with more than one order". Surface-level
   criteria (exact string match) get the ranking wrong in both directions;
   the ARC-based pipeline — translate to ARC, validate scoping, compare
   canonical patterns, test execution equivalence on random databases —
   gets it right.

   Run with:  dune exec examples/nl2sql_intent.exe *)

module Intent = Arc_intent.Intent

let schemas =
  [ ("Customers", [ "cid"; "name" ]); ("Orders", [ "oid"; "cid"; "total" ]) ]

let gold =
  "select O.cid, sum(O.total) spend from Orders O group by O.cid having \
   count(*) > 1"

let candidates =
  [
    ( "different formatting and aliases, same query",
      "select  o.cid,\n  sum(o.total) as spend\nfrom Orders as o\ngroup by \
       o.cid\nhaving count(*) > 1" );
    ( "> 1 became >= 1 (one token!)",
      "select O.cid, sum(O.total) spend from Orders O group by O.cid having \
       count(*) >= 1" );
    ( "forgot the HAVING clause",
      "select O.cid, sum(O.total) spend from Orders O group by O.cid" );
    ( "ill-scoped: aggregates a column from the wrong table",
      "select O.cid, sum(C.total) spend from Orders O group by O.cid" );
    ("does not even parse", "select O.cid sum(O.total) from group Orders");
  ]

let () =
  print_endline "gold query:";
  print_endline ("  " ^ gold);
  List.iter
    (fun (label, candidate) ->
      Printf.printf
        "\n──────────────────────────────────────────────────────\n\
         candidate: %s\n\n"
        label;
      let r = Intent.compare_sql ~schemas ~gold ~candidate () in
      print_endline (Intent.report_to_string r);
      let verdict =
        if not r.Intent.parses then "REJECT (syntax)"
        else if not r.Intent.validates then "REJECT (scoping)"
        else if r.Intent.execution_equivalent = Some true then "ACCEPT"
        else "REJECT (semantics)"
      in
      Printf.printf "  → %s\n" verdict;
      (* contrast with a pure string criterion *)
      let string_verdict =
        if r.Intent.exact_string_match then "ACCEPT" else "REJECT"
      in
      if string_verdict <> verdict then
        Printf.printf
          "  (exact-string matching would say %s — %s)\n" string_verdict
          (if string_verdict = "REJECT" then "a false negative"
           else "a false positive"))
    candidates;

  print_endline
    "\nThe first candidate is accepted despite sharing almost no characters\n\
     with the gold query; the second is rejected despite differing in one.\n\
     That asymmetry is exactly why the paper argues for intent-based\n\
     benchmarking over a semantic representation like ARC/ALT."
