(* Relational division — "suppliers who supply ALL parts" — in two ARC
   formulations whose relational patterns differ although every evaluation
   agrees: the classical double negation (TRC fragment) and the
   counting-based formulation (aggregation extension).

   This is the kind of comparison the paper's pattern vocabulary is built
   for: same intent, different relational patterns, and the fragment
   classifier pins down exactly which language features each needs.

   Run with:  dune exec examples/relational_division.exe *)

open Arc_core.Build
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Fragment = Arc_core.Fragment
module Pattern = Arc_core.Pattern

let s = V.str

let db =
  Database.of_list
    [
      ( "Supplies",
        Relation.of_rows [ "sup"; "part" ]
          [
            [ s "acme"; s "bolt" ]; [ s "acme"; s "nut" ]; [ s "acme"; s "cam" ];
            [ s "bolts4u"; s "bolt" ]; [ s "bolts4u"; s "nut" ];
            [ s "camco"; s "cam" ];
          ] );
      ( "Parts",
        Relation.of_rows [ "part" ] [ [ s "bolt" ]; [ s "nut" ]; [ s "cam" ] ]
      );
    ]

(* 1. double negation: suppliers with no part they do not supply *)
let division_trc =
  collection "Q" [ "sup" ]
    (exists [ bind "s1" "Supplies" ]
       (conj
          [
            eq (attr "Q" "sup") (attr "s1" "sup");
            not_
              (exists [ bind "p" "Parts" ]
                 (not_
                    (exists [ bind "s2" "Supplies" ]
                       (conj
                          [
                            eq (attr "s2" "sup") (attr "s1" "sup");
                            eq (attr "s2" "part") (attr "p" "part");
                          ]))));
          ]))

(* 2. counting: suppliers whose distinct supplied-part count equals |Parts| *)
let division_counting =
  collection "Q" [ "sup" ]
    (exists
       [
         bind_in "c"
           (collection "C" [ "sup"; "n" ]
              (exists
                 ~grouping:[ ("s1", "sup") ]
                 [ bind "s1" "Supplies" ]
                 (conj
                    [
                      eq (attr "C" "sup") (attr "s1" "sup");
                      eq (attr "C" "n")
                        (agg "countdistinct" (attr "s1" "part"));
                    ])));
         bind_in "t"
           (collection "T" [ "n" ]
              (exists ~grouping:group_all [ bind "p" "Parts" ]
                 (eq (attr "T" "n") (agg "countdistinct" (attr "p" "part")))));
       ]
       (conj
          [
            eq (attr "Q" "sup") (attr "c" "sup");
            eq (attr "c" "n") (attr "t" "n");
          ]))

let header str =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" str

let () =
  print_endline "Supplies(sup, part):";
  print_endline (Relation.to_table (Database.find db "Supplies"));

  header "1. Classical division by double negation";
  print_endline
    (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll division_trc));
  Printf.printf "\n  fragment: %s\n"
    (Fragment.name (Arc_core.Ast.Coll division_trc));
  Printf.printf "  pattern:  %s\n"
    (Pattern.to_string (Pattern.of_query (Arc_core.Ast.Coll division_trc)));

  header "2. Division by counting";
  print_endline
    (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll division_counting));
  Printf.printf "\n  fragment: %s\n"
    (Fragment.name (Arc_core.Ast.Coll division_counting));
  Printf.printf "  pattern:  %s\n"
    (Pattern.to_string
       (Pattern.of_query (Arc_core.Ast.Coll division_counting)));

  header "Both find the same suppliers";
  let r1 =
    Arc_engine.Eval.run_rows ~db (Arc_core.Ast.program (Arc_core.Ast.Coll division_trc))
  in
  let r2 =
    Arc_engine.Eval.run_rows ~db
      (Arc_core.Ast.program (Arc_core.Ast.Coll division_counting))
  in
  print_endline (Relation.to_table r1);
  Printf.printf "counting formulation agrees: %b\n" (Relation.equal_set r1 r2);

  (* randomized cross-check *)
  let rng = Random.State.make [| 3 |] in
  let agree = ref true in
  for _ = 1 to 40 do
    let parts = [ "a"; "b"; "c" ] in
    let supplies =
      List.concat_map
        (fun sup ->
          List.filter_map
            (fun p ->
              if Random.State.bool rng then Some [ s sup; s p ] else None)
            parts)
        [ "s1"; "s2"; "s3"; "s4" ]
    in
    let db =
      Database.of_list
        [
          ("Supplies", Relation.of_rows [ "sup"; "part" ] supplies);
          ( "Parts",
            Relation.of_rows [ "part" ] (List.map (fun p -> [ s p ]) parts) );
        ]
    in
    let r1 =
      Arc_engine.Eval.run_rows ~db
        (Arc_core.Ast.program (Arc_core.Ast.Coll division_trc))
    in
    let r2 =
      Arc_engine.Eval.run_rows ~db
        (Arc_core.Ast.program (Arc_core.Ast.Coll division_counting))
    in
    if not (Relation.equal_set r1 r2) then agree := false
  done;
  Printf.printf "\nagree on 40 random instances: %b\n" !agree;

  header "The same division, rendered to SQL";
  print_endline
    (Arc_sql.Print.statement
       (Arc_sql.Of_arc.statement
          (Arc_core.Ast.program (Arc_core.Ast.Coll division_trc))));

  header "And in the higraph modality";
  print_endline
    (Arc_higraph.Higraph.render
       (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll division_trc)))
