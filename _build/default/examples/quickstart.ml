(* Quickstart: build one ARC query, inspect it in all three modalities,
   validate it, evaluate it, and translate it to SQL.

   Run with:  dune exec examples/quickstart.exe *)

open Arc_core.Build
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

let section title =
  Printf.printf "\n=== %s %s\n" title
    (String.make (max 0 (60 - String.length title)) '=')

let () =
  (* A small database: employees and their salaries. *)
  let db =
    Database.of_list
      [
        ( "Emp",
          Relation.of_rows
            [ "name"; "dept" ]
            [
              [ V.str "ada"; V.str "eng" ];
              [ V.str "bo"; V.str "eng" ];
              [ V.str "cy"; V.str "ops" ];
            ] );
        ( "Sal",
          Relation.of_rows
            [ "name"; "amount" ]
            [
              [ V.str "ada"; V.int 120 ];
              [ V.str "bo"; V.int 90 ];
              [ V.str "cy"; V.int 80 ];
            ] );
      ]
  in

  (* The ARC query {Q(dept, total) | ∃e ∈ Emp, s ∈ Sal, γ_{e.dept}
       [Q.dept = e.dept ∧ Q.total = sum(s.amount) ∧ e.name = s.name]}:
     total salary per department (a grouped aggregate, FIO pattern). *)
  let q =
    coll "Q" [ "dept"; "total" ]
      (exists
         ~grouping:[ ("e", "dept") ]
         [ bind "e" "Emp"; bind "s" "Sal" ]
         (conj
            [
              eq (attr "Q" "dept") (attr "e" "dept");
              eq (attr "Q" "total") (sum (attr "s" "amount"));
              eq (attr "e" "name") (attr "s" "name");
            ]))
  in

  section "Comprehension modality";
  print_endline (Arc_syntax.Printer.pretty_query q);

  section "The same text parses back";
  let roundtrip =
    Arc_syntax.Parser.query_of_string (Arc_syntax.Printer.query q)
  in
  Printf.printf "round-trips: %b\n" (Arc_core.Ast.equal_query roundtrip q);

  section "Validation";
  let env =
    Arc_core.Analysis.env
      ~schemas:[ ("Emp", [ "name"; "dept" ]); ("Sal", [ "name"; "amount" ]) ]
      ()
  in
  (match Arc_core.Analysis.validate_query ~env q with
  | Ok () -> print_endline "well-scoped: bindings, grouping, head all check out"
  | Error es ->
      List.iter
        (fun e -> print_endline (Arc_core.Analysis.error_to_string e))
        es);

  section "ALT modality (machine-facing, after linking)";
  print_endline (Arc_alt.Alt.render (Arc_alt.Alt.link (Arc_alt.Alt.of_query q)));

  section "Higraph modality (human-facing)";
  print_endline (Arc_higraph.Higraph.render (Arc_higraph.Higraph.of_query q));

  section "Evaluation (conceptual evaluation strategy)";
  print_endline
    (Relation.to_table (Arc_engine.Eval.run_rows ~db (Arc_core.Ast.program q)));

  section "Relational pattern signature";
  print_endline (Arc_core.Pattern.to_string (Arc_core.Pattern.of_query q));

  section "Rendered to SQL";
  print_endline
    (Arc_sql.Print.statement (Arc_sql.Of_arc.statement (Arc_core.Ast.program q)));

  section "And back from SQL";
  let sql = "select e.dept, sum(s.amount) total from Emp e, Sal s where e.name = s.name group by e.dept" in
  let prog =
    Arc_sql.To_arc.statement
      ~schemas:[ ("Emp", [ "name"; "dept" ]); ("Sal", [ "name"; "amount" ]) ]
      (Arc_sql.Parse.statement_of_string sql)
  in
  print_endline (Arc_syntax.Printer.program prog)
