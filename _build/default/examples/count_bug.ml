(* The count bug (paper, Section 3.2), end to end.

   The famous decorrelation bug: rewriting a correlated COUNT subquery into
   a join with a grouped subquery silently loses rows whose correlated group
   is empty. ARC's vocabulary diagnoses it: Eq 27 uses the aggregate as a
   *comparison* predicate inside a correlated γ∅ scope; Eq 28's rewrite
   moves grouping to S alone, so id 9 (no S rows) has no group at all.

   Run with:  dune exec examples/count_bug.exe *)

module Catalog = Arc_catalog.Catalog
module Data = Arc_catalog.Data
module Relation = Arc_relation.Relation
module Eval = Arc_engine.Eval

let header s =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" s

let () =
  print_endline "The count bug on R(id,q) = {(9,0)}, S(id,d) = {}:";

  header "Eq (27) — the original correlated query";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq27));
  print_endline "\nSQL (Fig 21a):";
  print_endline ("  " ^ Data.sql_fig21a);
  print_endline "\nresult:";
  print_endline
    (Relation.to_table
       (Eval.run_rows ~db:Data.db_countbug (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq27))));

  header "Eq (28) — Kim's decorrelation: THE BUG";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq28));
  print_endline "\nSQL (Fig 21b):";
  print_endline ("  " ^ Data.sql_fig21b);
  print_endline "\nresult (the row for id 9 is gone):";
  print_endline
    (Relation.to_table
       (Eval.run_rows ~db:Data.db_countbug (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq28))));

  header "Eq (29) — the correct decorrelation (left join before grouping)";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq29));
  print_endline "\nSQL (Fig 21c):";
  print_endline ("  " ^ Data.sql_fig21c);
  print_endline "\nresult:";
  print_endline
    (Relation.to_table
       (Eval.run_rows ~db:Data.db_countbug (Arc_core.Ast.program (Arc_core.Ast.Coll Data.eq29))));

  header "The diagnosis, in ARC's vocabulary";
  print_endline
    "Eq 27's aggregation predicate r.q = count(s.d) is a COMPARISON inside a\n\
     correlated γ∅ scope: one group always exists, so count() sees the empty\n\
     group and returns 0 = r.q.  Eq 28 groups S by s.id first: id 9 produces\n\
     no group, and the join loses the row.  Eq 29 left-joins R before\n\
     grouping, so the empty group survives NULL-padded.";

  header "The higraph modality shows the difference at a glance";
  print_endline "Eq 27:";
  print_endline
    (Arc_higraph.Higraph.render (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll Data.eq27)));
  print_endline "\nEq 28:";
  print_endline
    (Arc_higraph.Higraph.render (Arc_higraph.Higraph.of_query (Arc_core.Ast.Coll Data.eq28)));

  header "Catalog verification (paper vs measured)";
  (match Catalog.by_id "E19-count-bug" with
  | Some e ->
      List.iter
        (fun o -> print_endline ("  " ^ Catalog.outcome_to_string o))
        (e.Catalog.run ())
  | None -> assert false)
