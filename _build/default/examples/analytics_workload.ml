(* A realistic analytics workload over a small order-management schema:
   eight SQL queries of increasing complexity, each translated to ARC,
   cross-validated against the direct SQL evaluator, and classified by
   fragment and pattern.

   This is the "SQL is increasingly machine-generated, humans read and
   validate" scenario from the paper's introduction, exercised end to end
   on the kind of queries an analytics dashboard would issue.

   Run with:  dune exec examples/analytics_workload.exe *)

module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Conventions = Arc_value.Conventions

let i = V.int
let s = V.str

let schemas =
  [
    ("Customers", [ "cid"; "name"; "region" ]);
    ("Orders", [ "oid"; "cid"; "total"; "year" ]);
    ("Items", [ "oid"; "sku"; "qty" ]);
  ]

let db =
  Database.of_list
    [
      ( "Customers",
        Relation.of_rows
          [ "cid"; "name"; "region" ]
          [
            [ i 1; s "ada"; s "west" ];
            [ i 2; s "bo"; s "west" ];
            [ i 3; s "cy"; s "east" ];
            [ i 4; s "dee"; s "east" ];
          ] );
      ( "Orders",
        Relation.of_rows
          [ "oid"; "cid"; "total"; "year" ]
          [
            [ i 100; i 1; i 250; i 2024 ];
            [ i 101; i 1; i 120; i 2025 ];
            [ i 102; i 2; i 80; i 2025 ];
            [ i 103; i 3; i 400; i 2024 ];
            [ i 104; i 3; i 10; i 2025 ];
            [ i 105; i 3; i 35; i 2025 ];
          ] );
      ( "Items",
        Relation.of_rows
          [ "oid"; "sku"; "qty" ]
          [
            [ i 100; s "widget"; i 2 ]; [ i 100; s "gizmo"; i 1 ];
            [ i 101; s "widget"; i 5 ]; [ i 102; s "gizmo"; i 3 ];
            [ i 103; s "doohickey"; i 7 ]; [ i 104; s "widget"; i 1 ];
            [ i 105; s "gizmo"; i 2 ];
          ] );
    ]

let workload =
  [
    ( "customers with no orders at all",
      "select C.name from Customers C where not exists (select 1 from Orders \
       O where O.cid = C.cid)" );
    ( "total spend per customer",
      "select C.name, sum(O.total) spend from Customers C, Orders O where \
       C.cid = O.cid group by C.cid, C.name" );
    ( "regions whose 2025 revenue exceeds 100",
      "select C.region, sum(O.total) rev from Customers C, Orders O where \
       C.cid = O.cid and O.year = 2025 group by C.region having sum(O.total) \
       > 100" );
    ( "customers and their order counts, keeping customers without orders",
      "select C.name, X.ct from Customers C join lateral (select count(O.oid) \
       ct from Orders O where O.cid = C.cid) X on true" );
    ( "customers who bought every sku that customer 1 bought",
      "select distinct C.cid from Customers C where not exists (select 1 \
       from Orders O1, Items I1 where O1.cid = 1 and I1.oid = O1.oid and not \
       exists (select 1 from Orders O2, Items I2 where O2.cid = C.cid and \
       I2.oid = O2.oid and I2.sku = I1.sku))" );
    ( "orders above their customer's average order value",
      "select O.oid from Orders O where O.total > (select avg(O2.total) from \
       Orders O2 where O2.cid = O.cid)" );
    ( "skus ordered in 2024 but not 2025",
      "select I.sku x from Items I, Orders O where I.oid = O.oid and O.year \
       = 2024 except select I.sku x from Items I, Orders O where I.oid = \
       O.oid and O.year = 2025" );
    ( "west-region customers with an order over 100",
      "select C.name from Customers C where C.region = 'west' and C.cid in \
       (select O.cid from Orders O where O.total > 100)" );
  ]

let () =
  Printf.printf "%d-query analytics workload over %s\n" (List.length workload)
    (String.concat ", " (List.map fst schemas));
  let all_ok = ref true in
  List.iteri
    (fun n (label, sql) ->
      Printf.printf
        "\n━━━ Q%d: %s\n    %s\n" (n + 1) label sql;
      let direct = Arc_sql.Eval_sql.run_string ~db sql in
      let prog =
        Arc_sql.To_arc.statement ~schemas (Arc_sql.Parse.statement_of_string sql)
      in
      (match Arc_core.Analysis.validate prog with
      | Ok () -> ()
      | Error es ->
          all_ok := false;
          List.iter
            (fun e ->
              print_endline ("  INVALID: " ^ Arc_core.Analysis.error_to_string e))
            es);
      let via_arc =
        Arc_engine.Eval.run_rows ~conv:Conventions.sql ~db prog
      in
      let agree =
        Relation.equal_bag (Relation.sort direct) (Relation.sort via_arc)
      in
      if not agree then all_ok := false;
      Printf.printf "    ARC: %s\n"
        (Arc_syntax.Printer.program prog);
      Printf.printf "    fragment: %-34s rows: %d   SQL ≡ ARC: %b\n"
        (Arc_core.Fragment.name prog.Arc_core.Ast.main)
        (Relation.cardinality direct) agree;
      print_endline (Relation.to_table (Relation.sort direct)))
    workload;
  Printf.printf "\nworkload cross-validated (SQL evaluator ≡ ARC engine): %b\n"
    !all_ok;
  if not !all_ok then exit 1
