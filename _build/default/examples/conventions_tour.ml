(* A tour of conventions (paper, Sections 2.6, 2.7): the same ARC query
   interpreted under different environment-level semantic parameters.

   Run with:  dune exec examples/conventions_tour.exe *)

module Conventions = Arc_value.Conventions
module Data = Arc_catalog.Data
module Relation = Arc_relation.Relation
module Eval = Arc_engine.Eval

let header s =
  Printf.printf "\n────────────────────────────────────────────\n%s\n\n" s

let eval ~conv ?(defs = []) ~db c =
  Eval.run_rows ~conv ~db { Arc_core.Ast.defs; main = Arc_core.Ast.Coll c }

let () =
  header "One query, four conventions";
  print_endline "Eq (15):";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq15));
  print_endline "\non R(ak,b) = {(1,2)}, S = {} — the paper's instance:\n";
  List.iter
    (fun (name, conv) ->
      let r = eval ~conv ~db:Data.db_souffle Data.eq15 in
      Printf.printf "%-36s %s\n"
        (name ^ " " ^ Conventions.to_string conv ^ ":")
        (String.concat "; "
           (List.map Arc_relation.Tuple.to_string (Relation.tuples r))))
    [
      ("Soufflé", Conventions.souffle);
      ("SQL (set)", Conventions.sql_set);
      ("SQL (bag)", Conventions.sql);
      ("classical TRC", Conventions.classical);
    ];
  print_endline
    "\nThe relational pattern never changed; only the convention for\n\
     aggregates over empty input did (0 vs NULL).";

  header "Set vs bag: the same nested query";
  let db =
    Arc_relation.Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ Arc_value.Value.Int 1; Arc_value.Value.Int 7 ] ] );
        ( "S",
          Relation.of_rows [ "B" ]
            [ [ Arc_value.Value.Int 7 ]; [ Arc_value.Value.Int 7 ] ] );
      ]
  in
  print_endline "nested:   ";
  print_endline (Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.sec27_nested));
  print_endline "unnested: ";
  print_endline
    (Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.sec27_unnested));
  Printf.printf
    "\nwith R = {(1,7)} and S = {7, 7} (a bag):\n\
    \  set semantics:  nested → %d row(s), unnested → %d row(s)\n\
    \  bag semantics:  nested → %d row(s), unnested → %d row(s)\n"
    (Relation.cardinality (eval ~conv:Conventions.sql_set ~db Data.sec27_nested))
    (Relation.cardinality (eval ~conv:Conventions.sql_set ~db Data.sec27_unnested))
    (Relation.cardinality (eval ~conv:Conventions.sql ~db Data.sec27_nested))
    (Relation.cardinality (eval ~conv:Conventions.sql ~db Data.sec27_unnested));
  print_endline
    "\nUnnesting is a valid rewrite under set semantics only — which is why\n\
     the set/bag choice matters to the optimizer yet remains orthogonal to\n\
     the language (Section 2.7).";

  header "Three-valued vs two-valued logic: NOT IN and NULLs";
  print_endline "R = {1, 2},  S = {1, NULL}";
  print_endline "\nEq (17) — the NOT EXISTS rewrite with explicit null checks:";
  print_endline (Arc_syntax.Printer.pretty_query (Arc_core.Ast.Coll Data.eq17));
  let r17 = eval ~conv:Conventions.classical ~db:Data.db_nulls Data.eq17 in
  let plain =
    eval ~conv:Conventions.classical ~db:Data.db_nulls
      Data.eq17_plain_not_exists
  in
  Printf.printf
    "\nunder plain two-valued logic:\n\
    \  with null checks (Eq 17):  %d row(s)  — replicates SQL's NOT IN\n\
    \  without them:              %d row(s)  — the classical answer {2}\n"
    (Relation.cardinality r17)
    (Relation.cardinality plain);
  let sql_r =
    Arc_sql.Eval_sql.run_string ~db:Data.db_nulls Data.sql_fig11a
  in
  Printf.printf "  SQL NOT IN (3VL):          %d row(s)\n"
    (Relation.cardinality sql_r);

  header "Deduplication without a DISTINCT operator";
  let db =
    Arc_relation.Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [
              [ Arc_value.Value.Int 1; Arc_value.Value.Int 2 ];
              [ Arc_value.Value.Int 1; Arc_value.Value.Int 2 ];
              [ Arc_value.Value.Int 3; Arc_value.Value.Int 4 ];
            ] );
      ]
  in
  print_endline (Arc_syntax.Printer.query (Arc_core.Ast.Coll Data.dedup_grouping));
  Printf.printf
    "\nunder bag semantics, grouping on all projected attributes \
     deduplicates:\n%s\n"
    (Relation.to_table (eval ~conv:Conventions.sql ~db Data.dedup_grouping))
