(* ALT modality tests: construction, linking, rendering, serialization. *)

open Arc_core.Ast
open Arc_core.Build
module Alt = Arc_alt.Alt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Fig 2a: ALT of Eq (1) *)
let eq1 =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

let structure () =
  let alt = Alt.of_query eq1 in
  let root = alt.Alt.root in
  Alcotest.(check bool) "root is collection" true
    (root.Alt.kind = Alt.Collection_node);
  (match root.Alt.children with
  | [ h; q ] ->
      (match h.Alt.kind with
      | Alt.Head_node hd -> Alcotest.(check string) "head" "Q" hd.head_name
      | _ -> Alcotest.fail "expected head node");
      Alcotest.(check bool) "quantifier" true (q.Alt.kind = Alt.Quantifier_node);
      let kinds = List.map (fun c -> c.Alt.kind) q.Alt.children in
      Alcotest.(check int) "2 bindings + body" 3 (List.length kinds);
      (match kinds with
      | [ Alt.Binding_node ("r", Some "R"); Alt.Binding_node ("s", Some "S"); Alt.And_node ] -> ()
      | _ -> Alcotest.fail "unexpected quantifier children")
  | _ -> Alcotest.fail "expected [head; body]");
  Alcotest.(check int) "size" 9 (Alt.size alt)

let preorder_ids () =
  let alt = Alt.of_query eq1 in
  let rec collect n = n.Alt.id :: List.concat_map collect n.Alt.children in
  let ids = collect alt.Alt.root in
  Alcotest.(check (list int)) "ids 0..8" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.sort compare ids)

let linking () =
  let alt = Alt.link (Alt.of_query eq1) in
  (* predicate Q.A = r.A links to head and to binding r *)
  Alcotest.(check bool) "has edges" true (List.length alt.Alt.edges >= 4);
  let labels = List.map (fun e -> e.Alt.label) alt.Alt.edges in
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " present") true (List.mem l labels))
    [ "Q.A"; "r.A"; "r.B"; "s.B"; "s.C" ];
  (* every edge destination is a binding or head node *)
  List.iter
    (fun e ->
      match Alt.find_node alt e.Alt.dst with
      | Some n -> (
          match n.Alt.kind with
          | Alt.Binding_node _ | Alt.Head_node _ -> ()
          | _ -> Alcotest.fail "edge must point at declaration")
      | None -> Alcotest.fail "dangling edge")
    alt.Alt.edges

let grouping_links () =
  let q =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let alt = Alt.link (Alt.of_query q) in
  let gk =
    List.filter (fun e -> e.Alt.ekind = Alt.Group_key) alt.Alt.edges
  in
  Alcotest.(check int) "one grouping-key edge" 1 (List.length gk);
  Alcotest.(check string) "key label" "r.A" (List.hd gk).Alt.label

let lateral_scoping () =
  (* nested collection sees earlier binding x but not itself *)
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         [
           bind "x" "X";
           bind_in "z"
             (collection "Z" [ "B" ]
                (exists [ bind "y" "Y" ]
                   (conj
                      [
                        eq (attr "Z" "B") (attr "y" "A");
                        lt (attr "x" "A") (attr "y" "A");
                      ])));
         ]
         (conj
            [ eq (attr "Q" "A") (attr "x" "A"); eq (attr "Q" "B") (attr "z" "B") ]))
  in
  let alt = Alt.link (Alt.of_query q) in
  (* the correlated reference x.A inside the nested collection must link to
     the binding of x in the outer scope *)
  let x_edges = List.filter (fun e -> e.Alt.label = "x.A") alt.Alt.edges in
  Alcotest.(check int) "two x.A refs (inner + outer)" 2 (List.length x_edges);
  let dsts = List.sort_uniq compare (List.map (fun e -> e.Alt.dst) x_edges) in
  Alcotest.(check int) "same declaration" 1 (List.length dsts)

let render_fig4b () =
  let q =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let out = Alt.render (Alt.link (Alt.of_query q)) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [
      "COLLECTION";
      "HEAD: Q(A, sm)";
      "QUANTIFIER \xe2\x88\x83";
      "BINDING: r \xe2\x88\x88 R";
      "GROUPING: r.A";
      "AND \xe2\x88\xa7";
      "PREDICATE: Q.A = r.A";
      "PREDICATE: Q.sm = sum(r.B)";
      "links:";
    ]

let json_wellformed () =
  let alt = Alt.link (Alt.of_query eq1) in
  let j = Alt.to_json alt in
  Alcotest.(check bool) "starts with root" true (contains j "{\"root\":");
  Alcotest.(check bool) "has edges array" true (contains j "\"edges\":[");
  Alcotest.(check bool) "kinds present" true
    (contains j "\"kind\":\"collection\"" && contains j "\"kind\":\"binding\"");
  (* braces balance *)
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then (
        decr depth;
        if !depth < 0 then ok := false))
    j;
  Alcotest.(check bool) "balanced braces" true (!ok && !depth = 0)

let sexp_wellformed () =
  let alt = Alt.link (Alt.of_query eq1) in
  let s = Alt.to_sexp alt in
  Alcotest.(check bool) "collection" true (contains s "(collection");
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '(' then incr depth
      else if c = ')' then (
        decr depth;
        if !depth < 0 then ok := false))
    s;
  Alcotest.(check bool) "balanced parens" true (!ok && !depth = 0)

let program_alt () =
  let prog =
    program
      ~defs:
        [
          define "A"
            (collection "A" [ "s"; "t" ]
               (exists [ bind "p" "P" ]
                  (conj
                     [
                       eq (attr "A" "s") (attr "p" "s");
                       eq (attr "A" "t") (attr "p" "t");
                     ])));
        ]
      (coll "Q" [ "s" ]
         (exists [ bind "a" "A" ] (eq (attr "Q" "s") (attr "a" "s"))))
  in
  let alt = Alt.of_program prog in
  let out = Alt.render alt in
  Alcotest.(check bool) "definition node" true (contains out "DEFINITION: A")

let outer_join_node () =
  let q =
    coll "Q" [ "m" ]
      (exists
         ~join:(J_left (J_var "r", J_inner [ J_lit (Arc_value.Value.Int 11); J_var "s" ]))
         [ bind "r" "R"; bind "s" "S" ]
         (eq (attr "Q" "m") (attr "r" "m")))
  in
  let out = Alt.render (Alt.of_query q) in
  Alcotest.(check bool) "join node rendered" true
    (contains out "JOIN: left(r, inner(11, s))")

(* the ALT modality is lossless: of_query then to_query is the identity *)
let lossless_roundtrip () =
  let open Arc_catalog.Data in
  List.iter
    (fun (name, q) ->
      let back = Alt.to_query (Alt.of_query q) in
      if not (equal_query back q) then
        Alcotest.failf "%s: ALT round-trip changed the query" name)
    [
      ("eq1", Coll eq1); ("eq2", Coll eq2); ("eq3", Coll eq3);
      ("eq7", Coll eq7); ("eq8", Coll eq8); ("eq10", Coll eq10);
      ("eq12", Coll eq12); ("eq13", Sentence eq13); ("eq14", Sentence eq14);
      ("eq15", Coll eq15); ("eq17", Coll eq17); ("eq18", Coll eq18);
      ("eq22", Coll eq22); ("eq26", Coll eq26); ("eq27", Coll eq27);
      ("eq28", Coll eq28); ("eq29", Coll eq29);
    ];
  (* linking does not interfere with reconstruction *)
  let q = Coll Arc_catalog.Data.eq8 in
  Alcotest.(check bool) "linked ALT reconstructs too" true
    (equal_query (Alt.to_query (Alt.link (Alt.of_query q))) q)

let () =
  Alcotest.run "arc_alt"
    [
      ( "structure",
        [
          Alcotest.test_case "eq1 tree shape" `Quick structure;
          Alcotest.test_case "distinct preorder ids" `Quick preorder_ids;
          Alcotest.test_case "program with defs" `Quick program_alt;
          Alcotest.test_case "join annotation node" `Quick outer_join_node;
        ] );
      ( "linking",
        [
          Alcotest.test_case "edges to declarations" `Quick linking;
          Alcotest.test_case "grouping-key edges" `Quick grouping_links;
          Alcotest.test_case "lateral correlation" `Quick lateral_scoping;
        ] );
      ( "losslessness",
        [ Alcotest.test_case "of_query/to_query identity" `Quick lossless_roundtrip ] );
      ( "rendering",
        [
          Alcotest.test_case "fig 4b labels" `Quick render_fig4b;
          Alcotest.test_case "json" `Quick json_wellformed;
          Alcotest.test_case "sexp" `Quick sexp_wellformed;
        ] );
    ]
