(* Fragment classification tests. *)

open Arc_core.Ast
open Arc_core.Build
module Fragment = Arc_core.Fragment
module Data = Arc_catalog.Data

let trc_and_conjunctive () =
  let cq =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
            ]))
  in
  Alcotest.(check bool) "conjunctive" true (Fragment.is_conjunctive cq);
  Alcotest.(check bool) "conjunctive is trc" true (Fragment.is_trc cq);
  Alcotest.(check string) "name" "conjunctive" (Fragment.name cq)

let negation_is_trc_not_conjunctive () =
  let q = Coll Data.eq22 in
  Alcotest.(check bool) "unique-set is TRC" true (Fragment.is_trc q);
  Alcotest.(check bool) "not conjunctive" false (Fragment.is_conjunctive q);
  Alcotest.(check string) "name" "TRC (relationally complete)"
    (Fragment.name q)

let extensions_detected () =
  let q3 = Coll Data.eq3 in
  let f = Fragment.features q3 in
  Alcotest.(check bool) "eq3 aggregates" true f.Fragment.uses_aggregation;
  Alcotest.(check bool) "eq3 groups" true f.Fragment.uses_grouping;
  Alcotest.(check bool) "eq3 not TRC" false (Fragment.is_trc q3);
  Alcotest.(check bool) "name mentions aggregation" true
    (String.length (Fragment.name q3) > 4
    && String.sub (Fragment.name q3) 0 5 = "ARC +");
  let f18 = Fragment.features (Coll Data.eq18) in
  Alcotest.(check bool) "eq18 join annotations" true
    f18.Fragment.uses_join_annotations;
  let f2 = Fragment.features (Coll Data.eq2) in
  Alcotest.(check bool) "eq2 nested collections" true
    f2.Fragment.uses_nested_collections;
  let f26 = Fragment.features (Coll Data.eq26) in
  Alcotest.(check bool) "eq26 arithmetic" true f26.Fragment.uses_arithmetic

let strict_generalization () =
  (* every TRC query validates as ARC: the paper's "strict generalization"
     claim, checked over the catalog's TRC-fragment members *)
  List.iter
    (fun (name, c) ->
      let q = Coll c in
      Alcotest.(check bool) (name ^ " in TRC fragment") true (Fragment.is_trc q);
      Alcotest.(check bool)
        (name ^ " validates as ARC")
        true
        (Arc_core.Analysis.validate_query q = Ok ()))
    [
      ("eq1", Data.eq1);
      ("eq17", Data.eq17);
      ("eq22", Data.eq22);
      ("sec27_nested", Data.sec27_nested);
      ("sec27_unnested", Data.sec27_unnested);
    ]

let null_like_features () =
  let q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              is_null (attr "r" "B");
              like (attr "r" "name") "a%";
            ]))
  in
  let f = Fragment.features q in
  Alcotest.(check bool) "nulls" true f.Fragment.uses_null_predicates;
  Alcotest.(check bool) "like" true f.Fragment.uses_like

let recursion_detection () =
  let prog = { defs = Data.eq16_defs; main = Coll Data.eq16_main } in
  Alcotest.(check bool) "ancestor is recursive" true
    (Fragment.uses_recursion prog);
  let nonrec_prog =
    { defs = [ Data.eq23_subset ]; main = Coll Data.eq24 }
  in
  Alcotest.(check bool) "subset is not recursive" false
    (Fragment.uses_recursion nonrec_prog);
  (* mutual recursion *)
  let even_odd =
    [
      define "Even"
        (collection "Even" [ "n" ]
           (exists [ bind "o" "Odd" ] (eq (attr "Even" "n") (attr "o" "n"))));
      define "Odd"
        (collection "Odd" [ "n" ]
           (exists [ bind "e" "Even" ] (eq (attr "Odd" "n") (attr "e" "n"))));
    ]
  in
  Alcotest.(check bool) "mutual recursion detected" true
    (Fragment.uses_recursion
       { defs = even_odd; main = Sentence True })

let () =
  Alcotest.run "arc_fragment"
    [
      ( "classification",
        [
          Alcotest.test_case "conjunctive" `Quick trc_and_conjunctive;
          Alcotest.test_case "TRC with negation" `Quick
            negation_is_trc_not_conjunctive;
          Alcotest.test_case "extensions" `Quick extensions_detected;
          Alcotest.test_case "strict generalization of TRC" `Quick
            strict_generalization;
          Alcotest.test_case "null/like features" `Quick null_like_features;
          Alcotest.test_case "recursion" `Quick recursion_detection;
        ] );
    ]
