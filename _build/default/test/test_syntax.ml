(* Comprehension-modality tests: printing, parsing, round-trips. *)

open Arc_core.Ast
open Arc_core.Build
module Printer = Arc_syntax.Printer
module Parser = Arc_syntax.Parser
module V = Arc_value.Value

let eq1 =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

let print_eq1 () =
  Alcotest.(check string) "unicode"
    "{Q(A) | \xe2\x88\x83r \xe2\x88\x88 R, s \xe2\x88\x88 S[Q.A = r.A \xe2\x88\xa7 r.B = s.B \xe2\x88\xa7 s.C = 0]}"
    (Printer.query eq1);
  Alcotest.(check string) "ascii"
    "{Q(A) | exists r in R, s in S[Q.A = r.A and r.B = s.B and s.C = 0]}"
    (Printer.query ~unicode:false eq1)

let parse_eq1 () =
  let parsed =
    Parser.query_of_string
      "{Q(A) | exists r in R, s in S[Q.A = r.A and r.B = s.B and s.C = 0]}"
  in
  Alcotest.(check bool) "parses to eq1" true (equal_query parsed eq1)

let parse_unicode () =
  let parsed = Parser.query_of_string (Printer.query eq1) in
  Alcotest.(check bool) "unicode round-trip" true (equal_query parsed eq1)

let roundtrip q =
  let printed = Printer.query q in
  let parsed =
    try Parser.query_of_string printed
    with Parser.Parse_error m -> Alcotest.failf "parse of %S failed: %s" printed m
  in
  if not (equal_query parsed q) then
    Alcotest.failf "round-trip mismatch for %s" printed;
  (* ascii rendering too *)
  let printed_a = Printer.query ~unicode:false q in
  let parsed_a =
    try Parser.query_of_string printed_a
    with Parser.Parse_error m ->
      Alcotest.failf "ascii parse of %S failed: %s" printed_a m
  in
  if not (equal_query parsed_a q) then
    Alcotest.failf "ascii round-trip mismatch for %s" printed_a

let roundtrip_grouping () =
  roundtrip
    (coll "Q" [ "A"; "sm" ]
       (exists
          ~grouping:[ ("r", "A") ]
          [ bind "r" "R" ]
          (conj
             [
               eq (attr "Q" "A") (attr "r" "A");
               eq (attr "Q" "sm") (sum (attr "r" "B"));
             ])));
  roundtrip
    (coll "Q" [ "sm" ]
       (exists ~grouping:group_all [ bind "r" "R" ]
          (eq (attr "Q" "sm") (sum (attr "r" "B")))))

let roundtrip_nested () =
  roundtrip
    (coll "Q" [ "A"; "B" ]
       (exists
          [
            bind "x" "X";
            bind_in "z"
              (collection "Z" [ "B" ]
                 (exists [ bind "y" "Y" ]
                    (conj
                       [
                         eq (attr "Z" "B") (attr "y" "A");
                         lt (attr "x" "A") (attr "y" "A");
                       ])));
          ]
          (conj
             [
               eq (attr "Q" "A") (attr "x" "A");
               eq (attr "Q" "B") (attr "z" "B");
             ])))

let roundtrip_join_annotations () =
  roundtrip
    (coll "Q" [ "m"; "n" ]
       (exists
          ~join:(J_left (J_var "r", J_inner [ J_lit (V.Int 11); J_var "s" ]))
          [ bind "r" "R"; bind "s" "S" ]
          (conj
             [
               eq (attr "Q" "m") (attr "r" "m");
               eq (attr "Q" "n") (attr "s" "n");
               eq (attr "r" "y") (attr "s" "y");
               eq (attr "r" "h") (cint 11);
             ])));
  roundtrip
    (coll "Q" [ "A" ]
       (exists
          ~join:(J_full (J_var "r", J_var "s"))
          [ bind "r" "R"; bind "s" "S" ]
          (conj [ eq (attr "Q" "A") (attr "r" "A"); eq (attr "r" "A") (attr "s" "B") ])))

let roundtrip_negation_disjunction () =
  roundtrip
    (coll "Q" [ "A" ]
       (disj
          [
            exists [ bind "r" "R" ]
              (conj
                 [
                   eq (attr "Q" "A") (attr "r" "A");
                   not_ (exists [ bind "s" "S" ] (eq (attr "r" "B") (attr "s" "B")));
                 ]);
            exists [ bind "s" "S" ] (eq (attr "Q" "A") (attr "s" "C"));
          ]))

let roundtrip_arith_like_null () =
  roundtrip
    (coll "Q" [ "A" ]
       (exists [ bind "r" "R" ]
          (conj
             [
               eq (attr "Q" "A") (attr "r" "A");
               gt (sub (attr "r" "B") (cint 3)) (mul (attr "r" "A") (cint 2));
               like (attr "r" "name") "a%";
               is_null (attr "r" "B");
               not_null (attr "r" "A");
               neq (attr "r" "A") cnull;
             ])));
  roundtrip
    (coll "Q" [ "v" ]
       (exists [ bind "r" "R" ]
          (eq (attr "Q" "v")
             (div (add (attr "r" "A") (cint 1)) (cint 2)))))

let roundtrip_exotic_names () =
  (* external relations with names like "-" and "*" (Fig 15/20) *)
  roundtrip
    (coll "Q" [ "A" ]
       (exists
          [ bind "r" "R"; bind "f" "-"; bind "g" "*" ]
          (conj
             [
               eq (attr "Q" "A") (attr "r" "A");
               eq (attr "f" "left") (attr "r" "B");
               eq (attr "g" "$1") (attr "f" "out");
             ])))

let roundtrip_sentence () =
  roundtrip
    (sentence
       (not_
          (exists [ bind "r" "R" ]
             (exists ~grouping:group_all [ bind "s" "S" ]
                (conj
                   [
                     eq (attr "r" "id") (attr "s" "id");
                     gt (attr "r" "q") (count (attr "s" "d"));
                   ])))))

let program_roundtrip () =
  let prog =
    program
      ~defs:
        [
          define "A"
            (collection "A" [ "s"; "t" ]
               (disj
                  [
                    exists [ bind "p" "P" ]
                      (conj
                         [
                           eq (attr "A" "s") (attr "p" "s");
                           eq (attr "A" "t") (attr "p" "t");
                         ]);
                    exists
                      [ bind "p" "P"; bind "a2" "A" ]
                      (conj
                         [
                           eq (attr "A" "s") (attr "p" "s");
                           eq (attr "p" "t") (attr "a2" "s");
                           eq (attr "a2" "t") (attr "A" "t");
                         ]);
                  ]))
        ]
      (coll "Q" [ "s" ]
         (exists [ bind "a" "A" ] (eq (attr "Q" "s") (attr "a" "s"))))
  in
  let printed = Printer.program prog in
  let parsed = Parser.program_of_string printed in
  Alcotest.(check bool) "program round-trip" true (equal_program parsed prog)

let parse_errors () =
  let bad s =
    match Parser.query_of_string s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "{Q(A) | ";
  bad "{Q(A) | exists r in R[Q.A = r.A]} trailing";
  bad "{Q(A) | exists r R[Q.A = r.A]}";
  bad "{Q(A) | exists r in R[Q.A ++ r.A]}";
  bad "{Q(A) | exists gamma_{} [true]}";
  bad "exists r in R[r.A '"

let pretty_parses () =
  let q =
    coll "Q" [ "dept"; "av" ]
      (exists
         [
           bind_in "x"
             (collection "X" [ "dept"; "av"; "sm" ]
                (exists
                   ~grouping:[ ("r", "dept") ]
                   [ bind "r" "R"; bind "s" "S" ]
                   (conj
                      [
                        eq (attr "X" "dept") (attr "r" "dept");
                        eq (attr "X" "av") (avg (attr "s" "sal"));
                        eq (attr "X" "sm") (sum (attr "s" "sal"));
                        eq (attr "r" "empl") (attr "s" "empl");
                      ])));
         ]
         (conj
            [
              eq (attr "Q" "dept") (attr "x" "dept");
              eq (attr "Q" "av") (attr "x" "av");
              gt (attr "x" "sm") (cint 100);
            ]))
  in
  let pretty = Printer.pretty_query q in
  let parsed = Parser.query_of_string pretty in
  Alcotest.(check bool) "pretty output parses back" true (equal_query parsed q)

(* property: round-trip on generated ASTs *)
let gen_query =
  let open QCheck.Gen in
  let var = oneofl [ "r"; "s"; "t" ] in
  let rel = oneofl [ "R"; "S"; "T" ] in
  let at = oneofl [ "A"; "B"; "C" ] in
  let term_g =
    oneof
      [
        map (fun n -> Const (V.Int n)) (int_bound 9);
        map2 (fun v a -> Attr (v, a)) var at;
      ]
  in
  let pred_g =
    let* op = oneofl [ Eq; Neq; Lt; Leq; Gt; Geq ] in
    let* l = term_g in
    let* r = term_g in
    return (Cmp (op, l, r))
  in
  let rec formula_g depth =
    if depth = 0 then map (fun p -> Pred p) pred_g
    else
      frequency
        [
          (3, map (fun p -> Pred p) pred_g);
          (1, map (fun f -> Not f) (formula_g (depth - 1)));
          (2, map (fun fs -> And fs) (list_size (int_range 2 3) (formula_g (depth - 1))));
          (1, map (fun fs -> Or fs) (list_size (int_range 2 3) (formula_g (depth - 1))));
        ]
  in
  let* v1 = var in
  let* r1 = rel in
  let* body = formula_g 2 in
  let* a = at in
  let* t = term_g in
  return
    (Coll
       {
         head = { head_name = "Q"; head_attrs = [ "X" ] };
         body =
           Exists
             {
               bindings = [ { var = v1; source = Base r1 } ];
               grouping = None;
               join = None;
               body = And [ Pred (Cmp (Eq, Attr ("Q", "X"), Attr (v1, a))); body; Pred (Cmp (Eq, t, t)) ];
             };
       })

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip on random queries" ~count:300
    (QCheck.make ~print:(fun q -> Printer.query q) gen_query)
    (fun q ->
      let q' = Parser.query_of_string (Printer.query q) in
      let q'' = Parser.query_of_string (Printer.query ~unicode:false q) in
      equal_query q q' && equal_query q q'')

let () =
  Alcotest.run "arc_syntax"
    [
      ( "printer",
        [ Alcotest.test_case "eq1 text" `Quick print_eq1 ] );
      ( "parser",
        [
          Alcotest.test_case "eq1 ascii" `Quick parse_eq1;
          Alcotest.test_case "eq1 unicode" `Quick parse_unicode;
          Alcotest.test_case "errors" `Quick parse_errors;
        ] );
      ( "round-trips",
        [
          Alcotest.test_case "grouping" `Quick roundtrip_grouping;
          Alcotest.test_case "nested collections" `Quick roundtrip_nested;
          Alcotest.test_case "join annotations" `Quick roundtrip_join_annotations;
          Alcotest.test_case "negation/disjunction" `Quick
            roundtrip_negation_disjunction;
          Alcotest.test_case "arith/like/null" `Quick roundtrip_arith_like_null;
          Alcotest.test_case "exotic relation names" `Quick roundtrip_exotic_names;
          Alcotest.test_case "sentence" `Quick roundtrip_sentence;
          Alcotest.test_case "program with defs" `Quick program_roundtrip;
          Alcotest.test_case "pretty printer parses" `Quick pretty_parses;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ] );
    ]
