(* Rel frontend tests: printing and the named-perspective embedding. *)

module Rel = Arc_rellang.Rel
module V = Arc_value.Value
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Pattern = Arc_core.Pattern

let i = V.int
let s = V.str

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let print_single () =
  let out = Rel.to_string Rel.paper_single_agg in
  Alcotest.(check bool) "def header" true (contains out "def Q(a, sm)");
  Alcotest.(check bool) "agg body" true (contains out "sum[(b) : R(a, b)]")

let print_eq11 () =
  let out = Rel.to_string Rel.paper_eq11 in
  Alcotest.(check bool) "average" true
    (contains out "average[(e, s) : R(e, d) and S(e, s)]");
  Alcotest.(check bool) "sum comparison" true (contains out "sm > 100")

let schemas = [ ("R", [ "empl"; "dept" ]); ("S", [ "empl"; "sal" ]) ]

let embed_single_agg () =
  let c =
    Rel.to_arc ~schemas:[ ("R", [ "A"; "B" ]) ] Rel.paper_single_agg
  in
  (match Arc_core.Analysis.validate (Arc_core.Ast.program (Arc_core.Ast.Coll c)) with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "invalid: %s"
        (String.concat "; " (List.map Arc_core.Analysis.error_to_string es)));
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "A"; "B" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
      ]
  in
  let r = Arc_engine.Eval.eval_collection_standalone ~db c in
  Alcotest.(check bool) "values" true
    (Relation.equal_set r
       (Relation.of_rows [ "a"; "sm" ] [ [ i 1; i 30 ]; [ i 2; i 5 ] ]))

let embed_eq11 () =
  let c = Rel.to_arc ~schemas Rel.paper_eq11 in
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "empl"; "dept" ]
            [ [ s "e1"; s "d1" ]; [ s "e2"; s "d1" ]; [ s "e3"; s "d2" ] ] );
        ( "S",
          Relation.of_rows [ "empl"; "sal" ]
            [ [ s "e1"; i 60 ]; [ s "e2"; i 60 ]; [ s "e3"; i 50 ] ] );
      ]
  in
  let r = Arc_engine.Eval.eval_collection_standalone ~db c in
  Alcotest.(check bool) "fig 6 result via Rel pattern" true
    (Relation.equal_set r
       (Relation.of_rows [ "d"; "av" ] [ [ s "d1"; V.Float 60. ] ]))

let eq11_pattern_matches_fig8 () =
  (* the Rel embedding uses one scope per aggregate: R and S are each
     referenced twice (Fig 8), unlike ARC's single-scope Eq 8 (once each) *)
  let c = Rel.to_arc ~schemas Rel.paper_eq11 in
  let pat = Pattern.of_collection c in
  Alcotest.(check bool) "2x R, 2x S" true
    (pat.Pattern.rel_refs = [ ("R", 2); ("S", 2) ]);
  Alcotest.(check int) "two grouping scopes" 2 pat.Pattern.n_grouping_scopes

let embed_missing_schema () =
  match Rel.to_arc ~schemas:[] Rel.paper_single_agg with
  | exception Rel.Embed_error _ -> ()
  | _ -> Alcotest.fail "expected schema error"

let () =
  Alcotest.run "arc_rellang"
    [
      ( "printing",
        [
          Alcotest.test_case "single aggregate" `Quick print_single;
          Alcotest.test_case "eq11" `Quick print_eq11;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "single aggregate evaluates" `Quick
            embed_single_agg;
          Alcotest.test_case "eq11 evaluates like fig 6" `Quick embed_eq11;
          Alcotest.test_case "eq11 pattern = fig 8" `Quick
            eq11_pattern_matches_fig8;
          Alcotest.test_case "missing schema rejected" `Quick
            embed_missing_schema;
        ] );
    ]
