(* Higraph modality tests: diagram structure, rendering, DOT export. *)

open Arc_core.Ast
open Arc_core.Build
module H = Arc_higraph.Higraph
module V = Arc_value.Value

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let eq1 =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

let fig2b () =
  let hg = H.of_query eq1 in
  let s = H.stats hg in
  Alcotest.(check int) "3 tables (result, r, s)" 3 s.H.n_tables;
  Alcotest.(check int) "2 edges (assignment + join)" 2 s.H.n_edges;
  let out = H.render hg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains out needle))
    [ "r \xe2\x88\x88 R"; "s \xe2\x88\x88 S"; "= 0"; "(assignment)" ]

let selection_annotation () =
  let hg = H.of_query eq1 in
  (* s.C = 0 is an annotation, not an edge or note *)
  let rec no_notes r =
    r.H.r_notes = [] && List.for_all no_notes r.H.r_subregions
  in
  Alcotest.(check bool) "no notes" true (no_notes hg.H.root)

let grouping_region () =
  let q =
    coll "Q" [ "A"; "sm" ]
      (exists
         ~grouping:[ ("r", "A") ]
         [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "Q" "sm") (sum (attr "r" "B"));
            ]))
  in
  let out = H.render (H.of_query q) in
  Alcotest.(check bool) "double border" true (contains out "\xe2\x95\x94");
  Alcotest.(check bool) "gamma label" true (contains out "\xce\xb3 r.A");
  Alcotest.(check bool) "key marked" true (contains out "A *");
  Alcotest.(check bool) "aggregate decorated" true
    (contains out "sm \xe2\x86\x90 sum(r.B)")

let negation_region () =
  let q =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              not_ (exists [ bind "s" "S" ] (eq (attr "r" "B") (attr "s" "B")));
            ]))
  in
  let hg = H.of_query q in
  let out = H.render hg in
  Alcotest.(check bool) "negation border label" true (contains out "\xc2\xac");
  let s = H.stats hg in
  Alcotest.(check bool) "nesting >= 3" true (s.H.max_nesting >= 3)

let outer_join_marks () =
  let q =
    coll "Q" [ "m"; "n" ]
      (exists
         ~join:(J_left (J_var "r", J_var "s"))
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "m") (attr "r" "m");
              eq (attr "Q" "n") (attr "s" "n");
              eq (attr "r" "y") (attr "s" "y");
            ]))
  in
  let out = H.render (H.of_query q) in
  Alcotest.(check bool) "optional side marked" true
    (contains out "\xe2\x97\x8b s \xe2\x88\x88 S");
  Alcotest.(check bool) "left side unmarked" false
    (contains out "\xe2\x97\x8b r \xe2\x88\x88 R");
  Alcotest.(check bool) "join note" true (contains out "join: left(r, s)")

let module_collapse () =
  let q =
    coll "Q" [ "d" ]
      (exists
         [ bind "l1" "L"; bind "s1" "Subset" ]
         (conj
            [
              eq (attr "Q" "d") (attr "l1" "d");
              eq (attr "s1" "left") (attr "l1" "d");
            ]))
  in
  let out = H.render (H.of_query ~collapse:[ "Subset" ] q) in
  Alcotest.(check bool) "module box" true
    (contains out "s1 \xe2\x88\x88 Subset \xe3\x80\x9amodule\xe3\x80\x9b")

let nested_collection_region () =
  let q =
    coll "Q" [ "A"; "B" ]
      (exists
         [
           bind "x" "X";
           bind_in "z"
             (collection "Z" [ "B" ]
                (exists [ bind "y" "Y" ]
                   (conj
                      [
                        eq (attr "Z" "B") (attr "y" "A");
                        lt (attr "x" "A") (attr "y" "A");
                      ])));
         ]
         (conj
            [ eq (attr "Q" "A") (attr "x" "A"); eq (attr "Q" "B") (attr "z" "B") ]))
  in
  let hg = H.of_query q in
  let out = H.render hg in
  Alcotest.(check bool) "nested region label" true (contains out "z \xe2\x88\x88");
  (* correlation edge x.A < y.A crosses regions *)
  Alcotest.(check bool) "correlation edge" true
    (List.exists (fun e -> e.H.e_label = "<") hg.H.edges)

let disjunct_regions () =
  let q =
    coll "Q" [ "X" ]
      (disj
         [
           exists [ bind "r" "R" ] (eq (attr "Q" "X") (attr "r" "A"));
           exists [ bind "s" "S" ] (eq (attr "Q" "X") (attr "s" "C"));
         ])
  in
  let out = H.render (H.of_query q) in
  Alcotest.(check bool) "branch 1" true (contains out "\xe2\x88\xa81");
  Alcotest.(check bool) "branch 2" true (contains out "\xe2\x88\xa82")

let dot_output () =
  let hg = H.of_query eq1 in
  let dot = H.to_dot hg in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains dot needle))
    [ "digraph arc"; "subgraph cluster_"; "shape=record"; "dir=none" ];
  (* assignment edges dashed *)
  Alcotest.(check bool) "dashed assignment" true (contains dot "style=dashed")

let sentence_diagram () =
  let q =
    sentence
      (not_
         (exists [ bind "r" "R" ]
            (exists ~grouping:group_all [ bind "s" "S" ]
               (conj
                  [
                    eq (attr "r" "id") (attr "s" "id");
                    gt (attr "r" "q") (count (attr "s" "d"));
                  ]))))
  in
  let hg = H.of_query q in
  let out = H.render hg in
  Alcotest.(check bool) "negation present" true (contains out "\xc2\xac");
  Alcotest.(check bool) "gamma empty region" true
    (contains out "\xce\xb3 \xe2\x88\x85")

let () =
  Alcotest.run "arc_higraph"
    [
      ( "structure",
        [
          Alcotest.test_case "fig 2b" `Quick fig2b;
          Alcotest.test_case "selection as annotation" `Quick
            selection_annotation;
          Alcotest.test_case "nested collection region" `Quick
            nested_collection_region;
          Alcotest.test_case "disjunct regions" `Quick disjunct_regions;
        ] );
      ( "decorations",
        [
          Alcotest.test_case "grouping double border" `Quick grouping_region;
          Alcotest.test_case "negation region" `Quick negation_region;
          Alcotest.test_case "outer-join circles" `Quick outer_join_marks;
          Alcotest.test_case "module collapse" `Quick module_collapse;
        ] );
      ( "exports",
        [
          Alcotest.test_case "dot" `Quick dot_output;
          Alcotest.test_case "boolean sentence" `Quick sentence_diagram;
        ] );
    ]
