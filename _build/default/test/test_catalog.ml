(* Catalog integration tests: every paper experiment's checks pass, every
   artifact renders, every ARC artifact validates and round-trips. *)

module Catalog = Arc_catalog.Catalog

let entry_checks (e : Catalog.entry) () =
  let outcomes = e.Catalog.run () in
  Alcotest.(check bool)
    (e.Catalog.id ^ " has checks")
    true
    (List.length outcomes > 0);
  List.iter
    (fun o ->
      if not o.Catalog.ok then
        Alcotest.failf "%s: %s" e.Catalog.id (Catalog.outcome_to_string o))
    outcomes

let entry_artifacts (e : Catalog.entry) () =
  let artifacts = e.Catalog.artifacts () in
  Alcotest.(check bool)
    (e.Catalog.id ^ " has artifacts")
    true
    (List.length artifacts > 0);
  List.iter
    (fun (name, body) ->
      if String.length body = 0 then
        Alcotest.failf "%s: empty artifact %s" e.Catalog.id name)
    artifacts

let ids_unique () =
  let ids = List.map (fun e -> e.Catalog.id) Catalog.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "23 experiments" 23 (List.length ids)

let by_id () =
  Alcotest.(check bool) "find count bug" true
    (Catalog.by_id "E19-count-bug" <> None);
  Alcotest.(check bool) "missing id" true (Catalog.by_id "nope" = None)

(* every ARC query value in the catalog data validates and round-trips *)
let data_queries_validate () =
  let open Arc_catalog.Data in
  let queries =
    [
      ("eq1", eq1); ("eq2", eq2); ("eq3", eq3); ("eq7", eq7); ("eq8", eq8);
      ("eq10", eq10); ("eq12", eq12); ("eq15", eq15); ("eq17", eq17);
      ("eq18", eq18); ("fig13_lateral", fig13_lateral);
      ("fig13_leftjoin", fig13_leftjoin); ("eq19", eq19); ("eq20", eq20);
      ("eq21", eq21); ("eq22", eq22); ("eq26", eq26);
      ("eq26_external", eq26_external); ("eq27", eq27); ("eq28", eq28);
      ("eq29", eq29); ("sec27_nested", sec27_nested);
      ("sec27_unnested", sec27_unnested); ("dedup_grouping", dedup_grouping);
    ]
  in
  List.iter
    (fun (name, c) ->
      let q = Arc_core.Ast.Coll c in
      (match Arc_core.Analysis.validate_query q with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s does not validate: %s" name
            (String.concat "; "
               (List.map Arc_core.Analysis.error_to_string es)));
      let printed = Arc_syntax.Printer.query q in
      let reparsed = Arc_syntax.Parser.query_of_string printed in
      if not (Arc_core.Ast.equal_query reparsed q) then
        Alcotest.failf "%s does not round-trip: %s" name printed)
    queries

(* the catalog's SQL texts parse and re-print stably *)
let data_sql_parses () =
  let open Arc_catalog.Data in
  List.iter
    (fun q ->
      match Arc_sql.Parse.statement_of_string q with
      | exception Arc_sql.Parse.Parse_error m ->
          Alcotest.failf "SQL %S does not parse: %s" q m
      | st ->
          let printed = Arc_sql.Print.statement st in
          ignore (Arc_sql.Parse.statement_of_string printed))
    [
      sql_fig3a; sql_fig4a; sql_fig5a; sql_fig5b; sql_fig6a; sql_fig9a;
      sql_fig11a; sql_fig11b; sql_fig12a; sql_fig13a; sql_fig13b; sql_fig13c;
      sql_fig17; sql_fig21a; sql_fig21b; sql_fig21c;
    ]

let () =
  Alcotest.run "arc_catalog"
    [
      ( "experiments",
        List.map
          (fun e ->
            Alcotest.test_case (e.Catalog.id ^ ": checks") `Quick
              (entry_checks e))
          Catalog.all );
      ( "artifacts",
        List.map
          (fun e ->
            Alcotest.test_case (e.Catalog.id ^ ": artifacts") `Quick
              (entry_artifacts e))
          Catalog.all );
      ( "structure",
        [
          Alcotest.test_case "ids" `Quick ids_unique;
          Alcotest.test_case "by_id" `Quick by_id;
          Alcotest.test_case "data queries validate" `Quick
            data_queries_validate;
          Alcotest.test_case "sql texts parse" `Quick data_sql_parses;
        ] );
    ]
