(* Intent toolkit tests: pattern equality, similarity metrics, randomized
   equivalence, and the NL2SQL validation report. *)

open Arc_core.Ast
open Arc_core.Build
module Intent = Arc_intent.Intent

let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

let eq1 =
  coll "Q" [ "A" ]
    (exists
       [ bind "r" "R"; bind "s" "S" ]
       (conj
          [
            eq (attr "Q" "A") (attr "r" "A");
            eq (attr "r" "B") (attr "s" "B");
            eq (attr "s" "C") (cint 0);
          ]))

(* same pattern, different names and conjunct order *)
let eq1_variant =
  coll "Out" [ "A" ]
    (exists
       [ bind "x" "R"; bind "y" "S" ]
       (conj
          [
            eq (attr "y" "C") (cint 0);
            eq (attr "Out" "A") (attr "x" "A");
            eq (attr "x" "B") (attr "y" "B");
          ]))

let pattern_equality () =
  Alcotest.(check bool) "renamed/reordered equal" true
    (Intent.pattern_equal eq1 eq1_variant);
  Alcotest.(check bool) "different constant differs" false
    (Intent.pattern_equal eq1
       (coll "Q" [ "A" ]
          (exists
             [ bind "r" "R"; bind "s" "S" ]
             (conj
                [
                  eq (attr "Q" "A") (attr "r" "A");
                  eq (attr "r" "B") (attr "s" "B");
                  eq (attr "s" "C") (cint 1);
                ]))))

let similarity_scale () =
  Alcotest.(check (float 0.0001)) "identical = 1.0" 1.0
    (Intent.similarity eq1 eq1_variant);
  let close =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
              eq (attr "s" "C") (cint 1);
            ]))
  in
  let far =
    coll "Q" [ "sm" ]
      (exists ~grouping:group_all [ bind "t" "T" ]
         (eq (attr "Q" "sm") (sum (attr "t" "B"))))
  in
  let s_close = Intent.similarity eq1 close in
  let s_far = Intent.similarity eq1 far in
  Alcotest.(check bool) "close > far" true (s_close > s_far);
  Alcotest.(check bool) "close < 1" true (s_close < 1.0);
  Alcotest.(check bool) "bounded" true (s_far >= 0.0 && s_close <= 1.0)

let surface_vs_intent () =
  (* the paper's motivation: equivalent queries, dissimilar strings *)
  let gold = "select R.A from R, S where R.B = S.B and S.C = 0" in
  let candidate =
    "select  r.A\nfrom R r join S s on r.B = s.B\nwhere s.C = 0"
  in
  let r = Intent.compare_sql ~schemas ~gold ~candidate () in
  Alcotest.(check bool) "not an exact string match" false r.Intent.exact_string_match;
  Alcotest.(check bool) "executes equivalently" true
    (r.Intent.execution_equivalent = Some true);
  Alcotest.(check bool) "intent similarity is 1.0" true
    (r.Intent.intent_similarity >= 0.999);
  (* near-identical strings, different meaning *)
  let candidate2 = "select R.A from R, S where R.B = S.B and S.C = 1" in
  let r2 = Intent.compare_sql ~schemas ~gold ~candidate:candidate2 () in
  Alcotest.(check bool) "high surface similarity" true
    (r2.Intent.surface_similarity > 0.9);
  Alcotest.(check bool) "but not equivalent" true
    (r2.Intent.execution_equivalent = Some false)

let string_similarity_basics () =
  Alcotest.(check (float 0.0001)) "identical" 1.0
    (Intent.string_similarity "select 1" "SELECT  1");
  Alcotest.(check bool) "disjoint low" true
    (Intent.string_similarity "abcabcabc" "xyzxyzxyz" < 0.2)

let equivalence_testing () =
  (* nested vs unnested agree under set semantics (Section 2.7) *)
  let nested =
    coll "Q" [ "A" ]
      (exists [ bind "r" "R" ]
         (exists [ bind "s" "S" ]
            (conj
               [
                 eq (attr "Q" "A") (attr "r" "A");
                 eq (attr "r" "B") (attr "s" "B");
               ])))
  in
  let unnested =
    coll "Q" [ "A" ]
      (exists
         [ bind "r" "R"; bind "s" "S" ]
         (conj
            [
              eq (attr "Q" "A") (attr "r" "A");
              eq (attr "r" "B") (attr "s" "B");
            ]))
  in
  (match
     Intent.equivalence ~conv:Arc_value.Conventions.sql_set ~schemas nested
       unnested
   with
  | Intent.Equivalent -> ()
  | Intent.Counterexample db ->
      Alcotest.failf "unexpected counterexample:@.%s"
        (Format.asprintf "%a" Arc_relation.Database.pp db));
  (* ... and diverge under bag semantics *)
  match
    Intent.equivalence ~conv:Arc_value.Conventions.sql ~trials:100 ~schemas
      nested unnested
  with
  | Intent.Counterexample _ -> ()
  | Intent.Equivalent ->
      Alcotest.fail "expected bag-semantics counterexample"

let invalid_candidate_reported () =
  let r =
    Intent.compare_sql ~schemas ~gold:"select R.A from R"
      ~candidate:"select R.A frm R" ()
  in
  Alcotest.(check bool) "does not parse" false r.Intent.parses;
  Alcotest.(check bool) "no execution verdict" true
    (r.Intent.execution_equivalent = None);
  Alcotest.(check bool) "report renders" true
    (String.length (Intent.report_to_string r) > 0)

let fio_foi_similarity () =
  (* FIO and FOI formulations: equivalent results, different patterns —
     intent similarity sees the difference, execution does not *)
  let fio = "select R.A, sum(R.B) sm from R group by R.A" in
  let foi =
    "select distinct R.A, (select sum(R2.B) from R R2 where R2.A = R.A) sm \
     from R"
  in
  let r = Intent.compare_sql ~schemas ~gold:fio ~candidate:foi () in
  Alcotest.(check bool) "patterns differ" false r.Intent.pattern_match;
  Alcotest.(check bool) "similarity below 1" true
    (r.Intent.intent_similarity < 1.0)

let () =
  Alcotest.run "arc_intent"
    [
      ( "patterns",
        [
          Alcotest.test_case "canonical equality" `Quick pattern_equality;
          Alcotest.test_case "similarity scale" `Quick similarity_scale;
          Alcotest.test_case "string similarity" `Quick string_similarity_basics;
        ] );
      ( "equivalence",
        [ Alcotest.test_case "set vs bag (un)nesting" `Quick equivalence_testing ] );
      ( "nl2sql reports",
        [
          Alcotest.test_case "surface vs intent" `Quick surface_vs_intent;
          Alcotest.test_case "invalid candidate" `Quick invalid_candidate_reported;
          Alcotest.test_case "FIO vs FOI" `Quick fio_foi_similarity;
        ] );
    ]
