(* Rewrite tests: each rewrite's claimed (in)equivalences, checked both on
   worked instances and on random databases. *)

open Arc_core.Ast
open Arc_core.Build
module Rewrite = Arc_core.Rewrite
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database
module Eval = Arc_engine.Eval
module V = Arc_value.Value

let i = V.int

let schemas = [ ("R", [ "A"; "B" ]); ("S", [ "B"; "C" ]) ]

let random_db seed =
  let rng = Random.State.make [| seed |] in
  Database.of_list
    (List.map
       (fun (name, attrs) ->
         let rows =
           List.init
             (Random.State.int rng 6)
             (fun _ ->
               List.map (fun _ -> V.Int (Random.State.int rng 4)) attrs)
         in
         (name, Relation.of_rows attrs rows))
       schemas)

let equal_on_random_dbs ?(conv = Conventions.sql_set) q1 q2 =
  List.for_all
    (fun seed ->
      let db = random_db seed in
      let r1 = Eval.run_rows ~conv ~db (program q1) in
      let r2 = Eval.run_rows ~conv ~db (program q2) in
      Relation.equal_set r1 r2)
    (List.init 25 (fun x -> x))

(* --- push_negation ------------------------------------------------- *)

let push_negation_structure () =
  let p1 = eq (attr "r" "A") (cint 1) in
  let p2 = eq (attr "r" "B") (cint 2) in
  Alcotest.(check bool) "double negation" true
    (equal_formula (Rewrite.push_negation (Not (Not p1))) p1);
  Alcotest.(check bool) "de morgan or" true
    (equal_formula
       (Rewrite.push_negation (Not (Or [ p1; p2 ])))
       (And [ Not p1; Not p2 ]));
  Alcotest.(check bool) "de morgan and" true
    (equal_formula
       (Rewrite.push_negation (Not (And [ p1; p2 ])))
       (Or [ Not p1; Not p2 ]))

let push_negation_preserves () =
  (* the Eq 17 query (negation over a disjunction) before/after, on random
     unary instances with occasional NULLs (its schema is R(A), S(A)) *)
  let q = Coll Arc_catalog.Data.eq17 in
  let q' =
    match q with
    | Coll c -> Coll { c with body = Rewrite.push_negation c.body }
    | s -> s
  in
  let random_unary_db seed =
    let rng = Random.State.make [| seed |] in
    let rows () =
      List.init
        (Random.State.int rng 5)
        (fun _ ->
          [
            (if Random.State.int rng 5 = 0 then V.Null
             else V.Int (Random.State.int rng 3));
          ])
    in
    Database.of_list
      [
        ("R", Relation.of_rows [ "A" ] (rows ()));
        ("S", Relation.of_rows [ "A" ] (rows ()));
      ]
  in
  List.iter
    (fun conv ->
      List.iter
        (fun seed ->
          let db = random_unary_db seed in
          let r1 = Eval.run_rows ~conv ~db (program q) in
          let r2 = Eval.run_rows ~conv ~db (program q') in
          Alcotest.(check bool) "same result" true (Relation.equal_set r1 r2))
        (List.init 20 (fun x -> x)))
    [ Conventions.sql_set; Conventions.classical ]

(* --- merge_nested_exists ------------------------------------------- *)

let unnest_structure () =
  let nested = Coll Arc_catalog.Data.sec27_nested in
  let unnested = Coll Arc_catalog.Data.sec27_unnested in
  Alcotest.(check bool) "merges to the unnested form" true
    (equal_query (Rewrite.merge_nested_exists nested) unnested);
  (* grouping scopes are not merged *)
  let grouped = Coll Arc_catalog.Data.eq27 in
  Alcotest.(check bool) "grouping scopes untouched" true
    (equal_query (Rewrite.merge_nested_exists grouped) grouped)

let unnest_set_sound_bag_unsound () =
  let nested = Coll Arc_catalog.Data.sec27_nested in
  let merged = Rewrite.merge_nested_exists nested in
  Alcotest.(check bool) "sound under set semantics" true
    (equal_on_random_dbs ~conv:Conventions.sql_set nested merged);
  (* the paper's bag counterexample *)
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 7 ] ]);
        ("S", Relation.of_rows [ "B"; "C" ] [ [ i 7; i 0 ]; [ i 7; i 1 ] ]);
      ]
  in
  let card q =
    Relation.cardinality (Eval.run_rows ~conv:Conventions.sql ~db (program q))
  in
  Alcotest.(check bool) "bag multiplicities differ" true
    (card nested <> card merged)

(* --- inline_definitions -------------------------------------------- *)

let inline_nonrecursive () =
  let view =
    define "V"
      (collection "V" [ "A" ]
         (exists [ bind "r" "R" ]
            (conj [ eq (attr "V" "A") (attr "r" "A"); gt (attr "r" "B") (cint 1) ])))
  in
  let main =
    coll "Q" [ "A" ]
      (exists [ bind "v" "V" ] (eq (attr "Q" "A") (attr "v" "A")))
  in
  let prog = program ~defs:[ view ] main in
  let inlined = Rewrite.inline_definitions prog in
  Alcotest.(check int) "definition eliminated" 0
    (List.length inlined.defs);
  List.iter
    (fun seed ->
      let db = random_db seed in
      let r1 = Eval.run_rows ~db prog in
      let r2 = Eval.run_rows ~db inlined in
      Alcotest.(check bool) "same result" true (Relation.equal_set r1 r2))
    [ 1; 2; 3; 4; 5 ]

let inline_keeps_recursive_and_abstract () =
  let prog =
    {
      defs = Arc_catalog.Data.eq16_defs;
      main = Coll Arc_catalog.Data.eq16_main;
    }
  in
  let inlined = Rewrite.inline_definitions prog in
  Alcotest.(check int) "recursive def kept" 1 (List.length inlined.defs);
  let prog2 =
    {
      defs = [ Arc_catalog.Data.eq23_subset ];
      main = Coll Arc_catalog.Data.eq24;
    }
  in
  let inlined2 = Rewrite.inline_definitions prog2 in
  Alcotest.(check int) "abstract def kept" 1 (List.length inlined2.defs)

(* --- dedup_wrap ----------------------------------------------------- *)

let dedup_wrap_works () =
  let counter = ref 0 in
  let fresh p =
    incr counter;
    Printf.sprintf "%s_%d" p !counter
  in
  let base =
    collection "Q" [ "A" ]
      (exists [ bind "r" "R" ] (eq (attr "Q" "A") (attr "r" "A")))
  in
  let wrapped = Rewrite.dedup_wrap ~fresh base in
  let db =
    Database.of_list
      [ ("R", Relation.of_rows [ "A"; "B" ] [ [ i 1; i 0 ]; [ i 1; i 1 ] ]) ]
  in
  let bag =
    Eval.run_rows ~conv:Conventions.sql ~db (program (Coll base))
  in
  let deduped =
    Eval.run_rows ~conv:Conventions.sql ~db (program (Coll wrapped))
  in
  Alcotest.(check int) "bag has 2" 2 (Relation.cardinality bag);
  Alcotest.(check int) "wrapped has 1" 1 (Relation.cardinality deduped);
  Alcotest.(check bool) "wrapped validates" true
    (Arc_core.Analysis.validate_query (Coll wrapped) = Ok ())

(* property: push_negation is idempotent and preserves canonical meaning *)
let prop_push_negation_idempotent =
  let gen =
    QCheck.Gen.(
      let pred_g =
        let* a = int_bound 3 in
        let* b = int_bound 3 in
        return (Pred (Cmp (Eq, Const (V.Int a), Const (V.Int b))))
      in
      let rec f depth =
        if depth = 0 then pred_g
        else
          frequency
            [
              (2, pred_g);
              (2, map (fun x -> Not x) (f (depth - 1)));
              (2, map (fun l -> And l) (list_size (int_range 2 3) (f (depth - 1))));
              (2, map (fun l -> Or l) (list_size (int_range 2 3) (f (depth - 1))));
            ]
      in
      f 3)
  in
  QCheck.Test.make ~name:"push_negation idempotent" ~count:200
    (QCheck.make gen) (fun f ->
      let once = Rewrite.push_negation f in
      equal_formula once (Rewrite.push_negation once))

let () =
  Alcotest.run "arc_rewrite"
    [
      ( "push_negation",
        [
          Alcotest.test_case "structure" `Quick push_negation_structure;
          Alcotest.test_case "evaluation-preserving" `Quick
            push_negation_preserves;
        ] );
      ( "unnesting",
        [
          Alcotest.test_case "structure" `Quick unnest_structure;
          Alcotest.test_case "set-sound, bag-unsound" `Quick
            unnest_set_sound_bag_unsound;
        ] );
      ( "inlining",
        [
          Alcotest.test_case "non-recursive views" `Quick inline_nonrecursive;
          Alcotest.test_case "recursive/abstract kept" `Quick
            inline_keeps_recursive_and_abstract;
        ] );
      ( "dedup",
        [ Alcotest.test_case "distinct encoding" `Quick dedup_wrap_works ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_push_negation_idempotent ] );
    ]
