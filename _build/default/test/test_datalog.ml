(* Datalog substrate tests: parser, stratified evaluator under Soufflé
   conventions, and the Datalog→ARC embedding. *)

module D = Arc_datalog
module V = Arc_value.Value
module Conventions = Arc_value.Conventions
module Relation = Arc_relation.Relation
module Database = Arc_relation.Database

let i = V.int

let check_rel ?(msg = "result") expected actual =
  if not (Relation.equal_set expected actual) then
    Alcotest.failf "%s:@.expected:@.%s@.actual:@.%s" msg
      (Relation.to_table (Relation.sort expected))
      (Relation.to_table (Relation.sort actual))

let parse_print_roundtrip () =
  let sources =
    [
      "A(x, y) :- P(x, y).";
      "A(x, y) :- P(x, z), A(z, y).";
      "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.";
      "T(x) :- P(x, _), !Blocked(x).";
      "C(x, n) :- P(x, _), n = count y : { P(x, y) }.";
      "F(x, y) :- P(x, y), x + 1 < y * 2.";
    ]
  in
  List.iter
    (fun src ->
      let p = D.Parse.program_of_string src in
      let printed = D.Ast.program_to_string p in
      let p2 = D.Parse.program_of_string printed in
      if not (D.Ast.equal_program p p2) then
        Alcotest.failf "round-trip failed for %s (printed %s)" src printed)
    sources

let ancestor () =
  let db =
    Database.of_list
      [
        ( "P",
          Relation.of_rows [ "s"; "t" ]
            [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
      ]
  in
  let prog =
    D.Parse.program_of_string
      "A(x, y) :- P(x, y). A(x, y) :- P(x, z), A(z, y)."
  in
  let result = D.Eval.query ~db prog "A" in
  Alcotest.(check int) "transitive closure" 6 (Relation.cardinality result)

let negation_stratified () =
  let db =
    Database.of_list
      [
        ("P", Relation.of_rows [ "x" ] [ [ i 1 ]; [ i 2 ]; [ i 3 ] ]);
        ("Blocked", Relation.of_rows [ "x" ] [ [ i 2 ] ]);
      ]
  in
  let prog = D.Parse.program_of_string "T(x) :- P(x), !Blocked(x)." in
  check_rel
    (Relation.of_rows [ "a1" ] [ [ i 1 ]; [ i 3 ] ])
    (D.Eval.query ~db prog "T")

let unstratifiable_rejected () =
  let db = Database.of_list [ ("P", Relation.of_rows [ "x" ] [ [ i 1 ] ]) ] in
  let prog = D.Parse.program_of_string "T(x) :- P(x), !T(x)." in
  match D.Eval.run ~db prog with
  | exception D.Eval.Datalog_error _ -> ()
  | _ -> Alcotest.fail "expected stratification error"

(* Eq (15): Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }. *)
let souffle_sum_empty () =
  let db =
    Database.of_list
      [
        ("R", Relation.of_rows [ "ak"; "b" ] [ [ i 1; i 2 ] ]);
        ("S", Relation.empty [ "a"; "b" ]);
      ]
  in
  let prog =
    D.Parse.program_of_string
      "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }."
  in
  check_rel ~msg:"souffle derives Q(1, 0)"
    (Relation.of_rows [ "a1"; "a2" ] [ [ i 1; i 0 ] ])
    (D.Eval.query ~db prog "Q")

(* Eq (6): grouped aggregate FOI without GROUP BY *)
let foi_grouped_aggregate () =
  let db =
    Database.of_list
      [
        ( "R",
          Relation.of_rows [ "a"; "b" ]
            [ [ i 1; i 10 ]; [ i 1; i 20 ]; [ i 2; i 5 ] ] );
      ]
  in
  let prog =
    D.Parse.program_of_string
      "Q(a, sm) :- R(a, _), sm = sum b : { R(a, b) }."
  in
  check_rel
    (Relation.of_rows [ "a1"; "a2" ] [ [ i 1; i 30 ]; [ i 2; i 5 ] ])
    (D.Eval.query ~db prog "Q")

let aggregate_body_vars_local () =
  (* Soufflé: "you cannot export information from within the body of an
     aggregate" — b below is local to the aggregate *)
  let db =
    Database.of_list
      [ ("R", Relation.of_rows [ "a"; "b" ] [ [ i 1; i 10 ]; [ i 1; i 20 ] ]) ]
  in
  let prog =
    D.Parse.program_of_string "Q(a, c) :- R(a, _), c = count b : { R(a, b) }."
  in
  check_rel
    (Relation.of_rows [ "a1"; "a2" ] [ [ i 1; i 2 ] ])
    (D.Eval.query ~db prog "Q")

let arithmetic_and_constants () =
  let db =
    Database.of_list
      [ ("P", Relation.of_rows [ "x"; "y" ] [ [ i 1; i 5 ]; [ i 2; i 3 ] ]) ]
  in
  let prog = D.Parse.program_of_string "F(x, z) :- P(x, y), z = y * 2, z > 7." in
  check_rel
    (Relation.of_rows [ "a1"; "a2" ] [ [ i 1; i 10 ] ])
    (D.Eval.query ~db prog "F");
  let prog2 = D.Parse.program_of_string "G(x) :- P(x, 5)." in
  check_rel
    (Relation.of_rows [ "a1" ] [ [ i 1 ] ])
    (D.Eval.query ~db prog2 "G")

let unsafe_rejected () =
  let db = Database.of_list [ ("P", Relation.of_rows [ "x" ] [ [ i 1 ] ]) ] in
  let prog = D.Parse.program_of_string "U(y) :- P(x), y > x." in
  match D.Eval.run ~db prog with
  | exception D.Eval.Datalog_error _ -> ()
  | _ -> Alcotest.fail "expected unsafe-rule error"

(* ------------------------------------------------------------------ *)
(* Embedding into ARC                                                  *)
(* ------------------------------------------------------------------ *)

let embed_agrees src ~query ~db ~schemas =
  let prog = D.Parse.program_of_string src in
  let direct = D.Eval.query ~db prog query in
  let arc = D.Embed.program ~schemas prog ~query in
  (match Arc_core.Analysis.validate arc with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "embedded ARC invalid: %s"
        (String.concat "; " (List.map Arc_core.Analysis.error_to_string es)));
  let via_arc =
    Arc_engine.Eval.run_rows ~conv:Conventions.souffle ~db arc
  in
  (* positional vs named attribute names differ; compare value lists *)
  let values r =
    List.sort compare
      (List.map
         (fun tp -> List.map V.to_string (Arc_relation.Tuple.values tp))
         (Relation.tuples (Relation.sort r)))
  in
  if values direct <> values via_arc then
    Alcotest.failf "embedding mismatch:@.datalog:@.%s@.arc:@.%s"
      (Relation.to_table (Relation.sort direct))
      (Relation.to_table (Relation.sort via_arc))

let embed_ancestor () =
  embed_agrees "A(x, y) :- P(x, y). A(x, y) :- P(x, z), A(z, y)."
    ~query:"A"
    ~db:
      (Database.of_list
         [
           ( "P",
             Relation.of_rows [ "s"; "t" ]
               [ [ i 1; i 2 ]; [ i 2; i 3 ]; [ i 3; i 4 ] ] );
         ])
    ~schemas:[ ("P", [ "s"; "t" ]) ]

let embed_negation () =
  embed_agrees "T(x) :- P(x, _), !B(x)." ~query:"T"
    ~db:
      (Database.of_list
         [
           ("P", Relation.of_rows [ "x"; "y" ] [ [ i 1; i 0 ]; [ i 2; i 0 ] ]);
           ("B", Relation.of_rows [ "x" ] [ [ i 2 ] ]);
         ])
    ~schemas:[ ("P", [ "x"; "y" ]); ("B", [ "x" ]) ]

let embed_aggregate () =
  embed_agrees "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }."
    ~query:"Q"
    ~db:
      (Database.of_list
         [
           ("R", Relation.of_rows [ "ak"; "b" ] [ [ i 1; i 2 ]; [ i 3; i 0 ] ]);
           ("S", Relation.of_rows [ "a"; "b" ] [ [ i 1; i 10 ]; [ i 2; i 20 ] ]);
         ])
    ~schemas:[ ("R", [ "ak"; "b" ]); ("S", [ "a"; "b" ]) ]

let embed_foi_pattern () =
  (* the embedded aggregate follows the FOI pattern (Fig 5) *)
  let prog =
    D.Parse.program_of_string
      "Q(a, sm) :- R(a, _), sm = sum b : { R(a, b) }."
  in
  let arc =
    D.Embed.program ~schemas:[ ("R", [ "a"; "b" ]) ] prog ~query:"Q"
  in
  let def = List.hd arc.Arc_core.Ast.defs in
  let pat = Arc_core.Pattern.of_collection def.Arc_core.Ast.def_body in
  Alcotest.(check bool) "FOI" true
    (pat.Arc_core.Pattern.agg_styles = [ Arc_core.Pattern.FOI ]);
  Alcotest.(check bool) "R referenced twice" true
    (pat.Arc_core.Pattern.rel_refs = [ ("R", 2) ])

(* property: on random EDBs, the embedding agrees with the direct
   evaluator for all three paper programs *)
let prop_embed_agrees =
  let gen_db =
    QCheck.Gen.(
      let pair_rows = list_size (int_bound 6)
        (let* a = int_bound 4 in
         let* b = int_bound 4 in
         return [ i a; i b ])
      in
      let* r = pair_rows in
      let* s_rows = pair_rows in
      let* p = pair_rows in
      return
        (Database.of_list
           [
             ("R", Relation.of_rows [ "ak"; "b" ] r);
             ("S", Relation.of_rows [ "a"; "b" ] s_rows);
             ("P", Relation.of_rows [ "s"; "t" ] p);
           ]))
  in
  let programs =
    [
      ("A", "A(x, y) :- P(x, y). A(x, y) :- P(x, z), A(z, y).",
       [ ("P", [ "s"; "t" ]) ]);
      ("Q", "Q(ak, sm) :- R(ak, _), sm = sum b : { S(a, b), a < ak }.",
       [ ("R", [ "ak"; "b" ]); ("S", [ "a"; "b" ]) ]);
      ("T", "T(x) :- P(x, _), !S(x, _).",
       [ ("P", [ "s"; "t" ]); ("S", [ "a"; "b" ]) ]);
    ]
  in
  QCheck.Test.make ~name:"embedding = evaluator on random EDBs" ~count:40
    (QCheck.make gen_db) (fun db ->
      List.for_all
        (fun (query, src, schemas) ->
          let prog = D.Parse.program_of_string src in
          let direct = D.Eval.query ~db prog query in
          let arc = D.Embed.program ~schemas prog ~query in
          let via_arc =
            Arc_engine.Eval.run_rows ~conv:Conventions.souffle ~db arc
          in
          let values r =
            List.sort compare
              (List.map
                 (fun tp -> List.map V.to_string (Arc_relation.Tuple.values tp))
                 (Relation.tuples (Relation.sort r)))
          in
          values direct = values via_arc)
        programs)

let () =
  Alcotest.run "arc_datalog"
    [
      ( "parser",
        [ Alcotest.test_case "round-trips" `Quick parse_print_roundtrip ] );
      ( "evaluator",
        [
          Alcotest.test_case "ancestor" `Quick ancestor;
          Alcotest.test_case "stratified negation" `Quick negation_stratified;
          Alcotest.test_case "unstratifiable rejected" `Quick
            unstratifiable_rejected;
          Alcotest.test_case "sum over empty = 0 (eq15)" `Quick
            souffle_sum_empty;
          Alcotest.test_case "FOI grouped aggregate (eq6)" `Quick
            foi_grouped_aggregate;
          Alcotest.test_case "aggregate body vars local" `Quick
            aggregate_body_vars_local;
          Alcotest.test_case "arithmetic and constants" `Quick
            arithmetic_and_constants;
          Alcotest.test_case "unsafe rejected" `Quick unsafe_rejected;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "ancestor" `Quick embed_ancestor;
          Alcotest.test_case "negation" `Quick embed_negation;
          Alcotest.test_case "aggregate (eq15)" `Quick embed_aggregate;
          Alcotest.test_case "FOI pattern preserved" `Quick embed_foi_pattern;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_embed_agrees ] );
    ]
