test/test_rellang.mli:
