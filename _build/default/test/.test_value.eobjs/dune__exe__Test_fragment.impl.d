test/test_fragment.ml: Alcotest Arc_catalog Arc_core List String
