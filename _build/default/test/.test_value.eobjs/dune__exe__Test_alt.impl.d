test/test_alt.ml: Alcotest Arc_alt Arc_catalog Arc_core Arc_value List String
