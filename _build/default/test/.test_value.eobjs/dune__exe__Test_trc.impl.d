test/test_trc.ml: Alcotest Arc_core Arc_engine Arc_relation Arc_syntax Arc_trc Arc_value
