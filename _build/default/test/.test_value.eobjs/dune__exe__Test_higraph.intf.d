test/test_higraph.mli:
