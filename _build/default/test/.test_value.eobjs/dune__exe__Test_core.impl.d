test/test_core.ml: Alcotest Arc_core Arc_value List QCheck QCheck_alcotest String
