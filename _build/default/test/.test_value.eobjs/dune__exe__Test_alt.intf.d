test/test_alt.mli:
