test/test_sql.ml: Alcotest Arc_core Arc_engine Arc_relation Arc_sql Arc_value List QCheck QCheck_alcotest String
