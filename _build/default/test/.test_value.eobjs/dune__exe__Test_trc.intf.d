test/test_trc.mli:
