test/test_fragment.mli:
