test/test_value.ml: Alcotest Arc_value Gen List Printf QCheck QCheck_alcotest
