test/test_engine.ml: Alcotest Arc_core Arc_engine Arc_relation Arc_value List Random
