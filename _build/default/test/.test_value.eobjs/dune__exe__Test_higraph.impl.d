test/test_higraph.ml: Alcotest Arc_core Arc_higraph Arc_value List String
