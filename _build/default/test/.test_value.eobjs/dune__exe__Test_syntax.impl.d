test/test_syntax.ml: Alcotest Arc_core Arc_syntax Arc_value List QCheck QCheck_alcotest
