test/test_catalog.ml: Alcotest Arc_catalog Arc_core Arc_sql Arc_syntax List String
