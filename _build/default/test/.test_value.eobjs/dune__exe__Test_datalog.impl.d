test/test_datalog.ml: Alcotest Arc_core Arc_datalog Arc_engine Arc_relation Arc_value List QCheck QCheck_alcotest String
