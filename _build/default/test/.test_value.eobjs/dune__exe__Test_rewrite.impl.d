test/test_rewrite.ml: Alcotest Arc_catalog Arc_core Arc_engine Arc_relation Arc_value List Printf QCheck QCheck_alcotest Random
