test/test_rellang.ml: Alcotest Arc_core Arc_engine Arc_relation Arc_rellang Arc_value List String
