test/test_properties.ml: Alcotest Arc_catalog Arc_core Arc_engine Arc_intent Arc_relation Arc_sql Arc_syntax Arc_value Float Hashtbl List Printf QCheck QCheck_alcotest
