test/test_intent.ml: Alcotest Arc_core Arc_intent Arc_relation Arc_value Format String
