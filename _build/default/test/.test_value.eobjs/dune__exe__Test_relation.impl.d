test/test_relation.ml: Alcotest Arc_relation Arc_value List QCheck QCheck_alcotest String
