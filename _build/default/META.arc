package "alt" (
  directory = "alt"
  description = ""
  requires = "arc.core arc.value fmt"
  archive(byte) = "arc_alt.cma"
  archive(native) = "arc_alt.cmxa"
  plugin(byte) = "arc_alt.cma"
  plugin(native) = "arc_alt.cmxs"
)
package "catalog" (
  directory = "catalog"
  description = ""
  requires =
  "arc.alt
   arc.core
   arc.datalog
   arc.engine
   arc.higraph
   arc.intent
   arc.relation
   arc.rellang
   arc.sql
   arc.syntax
   arc.trc
   arc.value
   fmt"
  archive(byte) = "arc_catalog.cma"
  archive(native) = "arc_catalog.cmxa"
  plugin(byte) = "arc_catalog.cma"
  plugin(native) = "arc_catalog.cmxs"
)
package "core" (
  directory = "core"
  description = ""
  requires = "arc.relation arc.value fmt"
  archive(byte) = "arc_core.cma"
  archive(native) = "arc_core.cmxa"
  plugin(byte) = "arc_core.cma"
  plugin(native) = "arc_core.cmxs"
)
package "datalog" (
  directory = "datalog"
  description = ""
  requires = "arc.core arc.relation arc.value fmt"
  archive(byte) = "arc_datalog.cma"
  archive(native) = "arc_datalog.cmxa"
  plugin(byte) = "arc_datalog.cma"
  plugin(native) = "arc_datalog.cmxs"
)
package "engine" (
  directory = "engine"
  description = ""
  requires = "arc.core arc.relation arc.value fmt"
  archive(byte) = "arc_engine.cma"
  archive(native) = "arc_engine.cmxa"
  plugin(byte) = "arc_engine.cma"
  plugin(native) = "arc_engine.cmxs"
)
package "higraph" (
  directory = "higraph"
  description = ""
  requires = "arc.core arc.value fmt"
  archive(byte) = "arc_higraph.cma"
  archive(native) = "arc_higraph.cmxa"
  plugin(byte) = "arc_higraph.cma"
  plugin(native) = "arc_higraph.cmxs"
)
package "intent" (
  directory = "intent"
  description = ""
  requires = "arc.core arc.engine arc.relation arc.sql arc.value fmt"
  archive(byte) = "arc_intent.cma"
  archive(native) = "arc_intent.cmxa"
  plugin(byte) = "arc_intent.cma"
  plugin(native) = "arc_intent.cmxs"
)
package "relation" (
  directory = "relation"
  description = ""
  requires = "arc.value fmt"
  archive(byte) = "arc_relation.cma"
  archive(native) = "arc_relation.cmxa"
  plugin(byte) = "arc_relation.cma"
  plugin(native) = "arc_relation.cmxs"
)
package "rellang" (
  directory = "rellang"
  description = ""
  requires = "arc.core arc.value fmt"
  archive(byte) = "arc_rellang.cma"
  archive(native) = "arc_rellang.cmxa"
  plugin(byte) = "arc_rellang.cma"
  plugin(native) = "arc_rellang.cmxs"
)
package "sql" (
  directory = "sql"
  description = ""
  requires = "arc.core arc.engine arc.relation arc.value fmt"
  archive(byte) = "arc_sql.cma"
  archive(native) = "arc_sql.cmxa"
  plugin(byte) = "arc_sql.cma"
  plugin(native) = "arc_sql.cmxs"
)
package "syntax" (
  directory = "syntax"
  description = ""
  requires = "arc.core arc.value fmt"
  archive(byte) = "arc_syntax.cma"
  archive(native) = "arc_syntax.cmxa"
  plugin(byte) = "arc_syntax.cma"
  plugin(native) = "arc_syntax.cmxs"
)
package "trc" (
  directory = "trc"
  description = ""
  requires = "arc.core arc.syntax arc.value fmt"
  archive(byte) = "arc_trc.cma"
  archive(native) = "arc_trc.cmxa"
  plugin(byte) = "arc_trc.cma"
  plugin(native) = "arc_trc.cmxs"
)
package "value" (
  directory = "value"
  description = ""
  requires = "fmt"
  archive(byte) = "arc_value.cma"
  archive(native) = "arc_value.cmxa"
  plugin(byte) = "arc_value.cma"
  plugin(native) = "arc_value.cmxs"
)